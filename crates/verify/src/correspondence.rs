//! Significant-object correspondences and computation projection (§9).
//!
//! The paper's proof method: *"For each group, element, event type, event
//! parameter, and thread in P, choose a corresponding object in PROG. We
//! call these the significant objects of PROG. … If we examine a
//! computation which is legal with respect to PROG, and only take note of
//! significant objects, those significant objects exhibit the same
//! behavior as a computation that is legal with respect to P."*
//!
//! A [`Correspondence`] names the significant objects: each pair maps a
//! program-side [`EventSel`] to a problem-side element/class (with a
//! parameter mapping). [`project`] then *takes note of only the
//! significant objects*: it keeps the matching events, re-expresses them
//! over the problem structure, and bridges enable edges through
//! insignificant events (an enable path in `PROG` whose intermediate
//! events are all insignificant becomes a direct enable edge in the
//! projection).

use std::fmt;

use gem_core::{ClassId, Computation, ComputationBuilder, ElementId, EventId, Structure, Value};
use gem_logic::EventSel;

/// One correspondence pair: program events matching `program` are the
/// significant occurrences of `problem_class` at `problem_element`.
#[derive(Clone, PartialEq, Debug)]
pub struct Pair {
    /// Selector over the *program* structure.
    pub program: EventSel,
    /// Target element in the *problem* structure.
    pub problem_element: ElementId,
    /// Target class in the problem structure.
    pub problem_class: ClassId,
    /// Parameter mapping: `(program index, problem index)` — the
    /// significant event parameters. Unmapped problem parameters default
    /// to [`Value::Unit`].
    pub params: Vec<(usize, usize)>,
}

/// A significant-object correspondence between a program specification and
/// a problem specification.
///
/// # Examples
///
/// The §9 Readers/Writers correspondence maps, e.g., the `Begin` event of
/// entry `StartRead` to the problem's `ReqRead`, and the `readernum`
/// assignment inside `StartRead` to the problem's `StartRead`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Correspondence {
    pairs: Vec<Pair>,
}

impl Correspondence {
    /// Creates an empty correspondence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pair mapping `program` events to `problem_class` at
    /// `problem_element`, with no parameters.
    pub fn map(
        mut self,
        program: EventSel,
        problem_element: ElementId,
        problem_class: ClassId,
    ) -> Self {
        self.pairs.push(Pair {
            program,
            problem_element,
            problem_class,
            params: Vec::new(),
        });
        self
    }

    /// Adds a pair with a parameter mapping.
    pub fn map_with_params(
        mut self,
        program: EventSel,
        problem_element: ElementId,
        problem_class: ClassId,
        params: &[(usize, usize)],
    ) -> Self {
        self.pairs.push(Pair {
            program,
            problem_element,
            problem_class,
            params: params.to_vec(),
        });
        self
    }

    /// The pairs, in precedence order (first match wins).
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// The first pair whose selector matches the event, if any.
    fn match_event(&self, computation: &Computation, e: EventId) -> Option<&Pair> {
        let ev = computation.event(e);
        self.pairs.iter().find(|p| p.program.matches(ev))
    }
}

/// Errors arising during projection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProjectError {
    /// Two significant events map to the same problem element but are
    /// concurrent in the program — the projected element order would be
    /// ill-defined.
    UnorderedAtElement {
        /// First program event.
        first: EventId,
        /// Second program event.
        second: EventId,
    },
    /// A mapped parameter index is out of range for the program event.
    BadParam {
        /// The program event.
        event: EventId,
        /// The out-of-range program parameter index.
        index: usize,
    },
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::UnorderedAtElement { first, second } => write!(
                f,
                "significant events {first} and {second} map to one element but are concurrent"
            ),
            ProjectError::BadParam { event, index } => {
                write!(f, "event {event}: mapped parameter {index} out of range")
            }
        }
    }
}

impl std::error::Error for ProjectError {}

/// Projects a program computation onto its significant objects, producing
/// a computation over the problem structure.
///
/// Events matching no pair are dropped; enable edges are bridged through
/// them (a `PROG` enable path `e₁ ⊳ x₁ ⊳ … ⊳ xₖ ⊳ e₂` with every `xᵢ`
/// insignificant becomes `e₁' ⊳ e₂'`).
///
/// # Errors
///
/// Returns [`ProjectError`] if the correspondence is inconsistent with
/// the computation (see the variants). Whether the *projection* is legal
/// for the problem specification is checked downstream by
/// [`Specification::check`](gem_spec::Specification::check) — an illegal
/// projection is exactly how `PROG sat P` fails.
pub fn project(
    program: &Computation,
    problem_structure: impl Into<std::sync::Arc<Structure>>,
    corr: &Correspondence,
) -> Result<Computation, ProjectError> {
    let problem_structure = problem_structure.into();
    // Significant events in topological order (so same-element events are
    // appended in their temporal order).
    let mut significant: Vec<(EventId, &Pair)> = Vec::new();
    for &e in program.closure().topological() {
        if let Some(pair) = corr.match_event(program, e) {
            significant.push((e, pair));
        }
    }

    if gem_obs::ambient::active() {
        gem_obs::ambient::add("project.projections", 1);
        gem_obs::ambient::add("project.significant_events", significant.len() as u64);
    }

    // Element-order consistency: same-element significant events must be
    // temporally ordered in the program.
    for (i, &(a, pa)) in significant.iter().enumerate() {
        for &(b, pb) in &significant[i + 1..] {
            if pa.problem_element == pb.problem_element && program.concurrent(a, b) {
                return Err(ProjectError::UnorderedAtElement {
                    first: a,
                    second: b,
                });
            }
        }
    }

    let mut builder = ComputationBuilder::new(problem_structure.clone());
    let mut image: Vec<Option<EventId>> = vec![None; program.event_count()];
    for &(e, pair) in &significant {
        let ev = program.event(e);
        let arity = problem_structure.class_info(pair.problem_class).arity();
        let mut params = vec![Value::Unit; arity];
        for &(prog_idx, prob_idx) in &pair.params {
            let v = ev
                .param(prog_idx)
                .ok_or(ProjectError::BadParam {
                    event: e,
                    index: prog_idx,
                })?
                .clone();
            if prob_idx < arity {
                params[prob_idx] = v;
            }
        }
        let new_id = builder
            .add_event(pair.problem_element, pair.problem_class, params)
            .expect("problem ids are from the problem structure");
        image[e.index()] = Some(new_id);
    }

    // Bridged enable edges: DFS through insignificant events.
    for &(e, _) in &significant {
        let mut stack: Vec<EventId> = program.enabled_from(e).to_vec();
        let mut seen = vec![false; program.event_count()];
        while let Some(next) = stack.pop() {
            if seen[next.index()] {
                continue;
            }
            seen[next.index()] = true;
            if let Some(target) = image[next.index()] {
                builder
                    .enable(image[e.index()].expect("significant"), target)
                    .expect("known events");
            } else {
                stack.extend(program.enabled_from(next).iter().copied());
            }
        }
    }

    // Behaviour preservation (§9's "exhibit the same behavior"): the
    // projection's temporal order must be the restriction of the
    // program's, even where the mediating insignificant events are gone.
    for (i, &(a, pa)) in significant.iter().enumerate() {
        for &(b, pb) in &significant[i + 1..] {
            if pa.problem_element == pb.problem_element {
                continue; // already captured by the element order
            }
            if program.temporally_precedes(a, b) {
                builder
                    .add_precedence(
                        image[a.index()].expect("significant"),
                        image[b.index()].expect("significant"),
                    )
                    .expect("known events");
            } else if program.temporally_precedes(b, a) {
                builder
                    .add_precedence(
                        image[b.index()].expect("significant"),
                        image[a.index()].expect("significant"),
                    )
                    .expect("known events");
            }
        }
    }

    Ok(builder
        .seal()
        .expect("projection of an acyclic computation is acyclic"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::Structure;

    /// Program: user chain  A -> x -> y -> B  (x, y insignificant), plus a
    /// concurrent C on another element.
    fn program() -> (Computation, Vec<EventId>) {
        let mut s = Structure::new();
        let a = s.add_class("A", &["v"]).unwrap();
        let mid = s.add_class("Mid", &[]).unwrap();
        let b = s.add_class("B", &[]).unwrap();
        let c = s.add_class("C", &[]).unwrap();
        let p = s.add_element("P", &[a, mid, b]).unwrap();
        let q = s.add_element("Q", &[c]).unwrap();
        let mut builder = ComputationBuilder::new(s);
        let e_a = builder.add_event(p, a, vec![Value::Int(7)]).unwrap();
        let e_x = builder.add_event(p, mid, vec![]).unwrap();
        let e_y = builder.add_event(p, mid, vec![]).unwrap();
        let e_b = builder.add_event(p, b, vec![]).unwrap();
        let e_c = builder.add_event(q, c, vec![]).unwrap();
        builder.enable(e_a, e_x).unwrap();
        builder.enable(e_x, e_y).unwrap();
        builder.enable(e_y, e_b).unwrap();
        (builder.seal().unwrap(), vec![e_a, e_x, e_y, e_b, e_c])
    }

    fn problem_structure() -> (Structure, ElementId, ClassId, ClassId, ClassId) {
        let mut s = Structure::new();
        let start = s.add_class("Start", &["val"]).unwrap();
        let finish = s.add_class("Finish", &[]).unwrap();
        let other = s.add_class("Other", &[]).unwrap();
        let ctl = s.add_element("Ctl", &[start, finish]).unwrap();
        (s, ctl, start, finish, other)
    }

    #[test]
    fn projection_bridges_enable_edges() {
        let (prog, e) = program();
        let ps = prog.structure();
        let (problem, ctl, start, finish, _) = problem_structure();
        let corr = Correspondence::new()
            .map_with_params(
                EventSel::of_class(ps.class("A").unwrap()),
                ctl,
                start,
                &[(0, 0)],
            )
            .map(EventSel::of_class(ps.class("B").unwrap()), ctl, finish);
        let projected = project(&prog, problem, &corr).unwrap();
        assert_eq!(projected.event_count(), 2);
        let s0 = projected.nth_at(ctl, 0).unwrap();
        let s1 = projected.nth_at(ctl, 1).unwrap();
        // A's param carried over; bridged edge A' |> B'.
        assert_eq!(projected.event(s0).param(0), Some(&Value::Int(7)));
        assert!(projected.enables(s0, s1));
        let _ = e;
    }

    #[test]
    fn insignificant_events_dropped() {
        let (prog, _) = program();
        let ps = prog.structure();
        let (problem, ctl, start, _, _) = problem_structure();
        let corr =
            Correspondence::new().map(EventSel::of_class(ps.class("A").unwrap()), ctl, start);
        let projected = project(&prog, problem, &corr).unwrap();
        assert_eq!(projected.event_count(), 1);
        assert!(projected.enable_edges().count() == 0);
    }

    #[test]
    fn concurrent_events_to_same_element_rejected() {
        let (prog, _) = program();
        let ps = prog.structure();
        let (problem, ctl, start, finish, _) = problem_structure();
        // Map both A (at P) and C (at Q, concurrent with A) to element Ctl.
        let corr = Correspondence::new()
            .map(EventSel::of_class(ps.class("A").unwrap()), ctl, start)
            .map(EventSel::of_class(ps.class("C").unwrap()), ctl, finish);
        let err = project(&prog, problem, &corr).unwrap_err();
        assert!(matches!(err, ProjectError::UnorderedAtElement { .. }));
        assert!(err.to_string().contains("concurrent"));
    }

    #[test]
    fn bad_param_mapping_rejected() {
        let (prog, _) = program();
        let ps = prog.structure();
        let (problem, ctl, start, _, _) = problem_structure();
        let corr = Correspondence::new().map_with_params(
            EventSel::of_class(ps.class("B").unwrap()),
            ctl,
            start,
            &[(3, 0)], // B has no params
        );
        let err = project(&prog, problem, &corr).unwrap_err();
        assert!(matches!(err, ProjectError::BadParam { .. }));
    }

    #[test]
    fn first_match_wins() {
        let (prog, _) = program();
        let ps = prog.structure();
        let (problem, ctl, start, finish, _) = problem_structure();
        // Both pairs match class A; the first takes precedence.
        let sel = EventSel::of_class(ps.class("A").unwrap());
        let corr = Correspondence::new()
            .map(sel.clone(), ctl, start)
            .map(sel, ctl, finish);
        let projected = project(&prog, problem, &corr).unwrap();
        assert_eq!(projected.event_count(), 1);
        assert_eq!(projected.events()[0].class(), start);
    }

    #[test]
    fn unmapped_params_default_to_unit() {
        let (prog, _) = program();
        let ps = prog.structure();
        let (problem, ctl, start, _, _) = problem_structure();
        let corr =
            Correspondence::new().map(EventSel::of_class(ps.class("A").unwrap()), ctl, start);
        let projected = project(&prog, problem, &corr).unwrap();
        assert_eq!(projected.events()[0].param(0), Some(&Value::Unit));
    }
}
