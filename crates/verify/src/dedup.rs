//! Sound computation-level deduplication for verification sweeps.
//!
//! Many interleavings of a concurrent program are *trace-equivalent*: they
//! seal to the same GEM computation (same events, same enablement, same
//! temporal order `⇒`), merely discovered through a different schedule. Every
//! property checked by `verify_system` and `eventually_on_all_runs` — GEM
//! legality, projection, restriction formulas — is a function of the sealed
//! computation alone, so trace-equivalent runs always receive the same
//! verdict. [`canonical_key`] produces a schedule-independent fingerprint of
//! a computation; drivers cache the verdict per key and replay it on repeat
//! sightings instead of re-projecting and re-checking.
//!
//! This is sound where `Explorer::prune_control_cycles` is not: pruning
//! skips *runs*, changing `runs`/failure indices and potentially hiding
//! failures behind a coarse control key, while deduplication still
//! enumerates every run and only skips redundant *checking* work. The
//! outcome is byte-identical with deduplication on or off.
//!
//! Event ids are insertion-ordered and therefore schedule-dependent, so the
//! key relabels events by the schedule-independent total order
//! `(element, seq)` (an event's position in its element's forced sequence)
//! before serialising classes, parameters, thread tags, enablement edges,
//! memberships, and the full temporal-order relation.
//!
//! Keys are only meaningful between computations over the same structure;
//! the per-sweep caches in this crate never mix structures.

use gem_core::{Computation, ElementId, EventId, NodeRef, Value};

/// A schedule-independent fingerprint of a computation: an exact,
/// length-prefixed numeric serialisation (not a hash — no collisions), so
/// two computations over the same structure get equal keys iff they are
/// the same computation up to event-id relabeling.
pub type CanonicalKey = Vec<u64>;

/// Packs a canonically-ranked edge into one key word.
fn pair(a: u32, b: u32) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

/// Serialises a parameter value exactly (variant tag + length-prefixed
/// content, recursing through pairs).
fn push_value(key: &mut Vec<u64>, v: &Value) {
    match v {
        Value::Unit => key.push(0),
        Value::Bool(b) => key.extend([1, u64::from(*b)]),
        Value::Int(i) => key.extend([2, *i as u64]),
        Value::Str(s) => {
            key.extend([3, s.len() as u64]);
            key.extend(s.bytes().map(u64::from));
        }
        Value::Pair(a, b) => {
            key.push(4);
            push_value(key, a);
            push_value(key, b);
        }
    }
}

/// Returns the [`CanonicalKey`] of `comp`.
///
/// Cost is `O(n²/64)` in the event count (the temporal-order relation is
/// serialised from the closure's bitset rows), far below one projection +
/// restriction check — the work a cache hit saves.
pub fn canonical_key(comp: &Computation) -> CanonicalKey {
    // Rank events by (element, seq): unique per event, and invariant under
    // the insertion order a particular schedule happened to produce.
    let n = comp.event_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| {
        let ev = &comp.events()[i];
        (ev.element().as_raw(), ev.seq())
    });
    let mut rank = vec![0u32; n];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r as u32;
    }

    let mut key: Vec<u64> = Vec::with_capacity(8 * n + 16);
    key.push(n as u64);
    for &i in &order {
        let ev = &comp.events()[i];
        key.push(u64::from(ev.class().as_raw()));
        key.push(ev.params().len() as u64);
        for p in ev.params() {
            push_value(&mut key, p);
        }
        key.push(ev.threads().len() as u64);
        for t in ev.threads() {
            key.push(pair(t.thread_type().as_raw(), t.instance()));
        }
    }

    let mut enables: Vec<u64> = comp
        .enable_edges()
        .map(|(from, to)| pair(rank[from.index()], rank[to.index()]))
        .collect();
    enables.sort_unstable();
    key.push(enables.len() as u64);
    key.append(&mut enables);

    // The temporal order folds in explicit precedences that are not
    // recoverable from enablement + element order alone.
    let mut pairs: Vec<u64> = Vec::new();
    for &i in &order {
        let a = rank[i];
        for s in comp
            .closure()
            .successors(EventId::from_raw(i as u32))
            .iter()
        {
            pairs.push(pair(a, rank[s]));
        }
    }
    pairs.sort_unstable();
    key.push(pairs.len() as u64);
    key.append(&mut pairs);

    let mut members: Vec<(u32, u32, u64, u32)> = comp
        .memberships()
        .iter()
        .map(|m| {
            let (tag, raw) = match m.member {
                NodeRef::Element(el) => (0u64, el.as_raw()),
                NodeRef::Group(g) => (1u64, g.as_raw()),
            };
            (rank[m.event.index()], m.group.as_raw(), tag, raw)
        })
        .collect();
    members.sort_unstable();
    key.push(members.len() as u64);
    for (ev, group, tag, raw) in members {
        key.extend([pair(ev, group), (tag << 32) | u64::from(raw)]);
    }
    key
}

/// Returns the cheap exact *confirmation key* of `comp`: the
/// [`canonical_key`] serialisation with the O(n²) temporal-order section
/// replaced by the computation's *generators* — the sorted precedence
/// pairs ([`Computation::precedence_edges`]). The temporal order is, by
/// construction, the transitive closure of the enable relation, the
/// per-element occurrence chains, and the precedence pairs, all of which
/// this key serialises exactly; so **equal confirmation keys imply equal
/// canonical keys** and therefore identical verdicts. (The converse can
/// fail only when a *redundant* precedence edge restates an ordering the
/// closure already implies — then two canonically-equal computations get
/// distinct confirmation keys and a dedup cache merely re-checks one of
/// them, which costs time but never changes an outcome. The simulators
/// in `gem-lang` emit no precedence edges at all, so for their output
/// the two keys induce the same equivalence classes.)
///
/// Cost is O(n + m) in the event and edge counts: the `(element, seq)`
/// ranking falls out of concatenating the per-element chains in element
/// order, with no sort and no closure walk. Paired with
/// [`Computation::fingerprint`] as a bucket index, this is what retires
/// `phase.canonical_key` from the per-run dedup budget.
pub fn confirm_key(comp: &Computation) -> CanonicalKey {
    let n = comp.event_count();
    // Concatenating the element chains in element-id order enumerates
    // events exactly in (element, seq) order — the same ranking
    // `canonical_key` obtains by sorting.
    let mut rank = vec![0u32; n];
    let mut order: Vec<EventId> = Vec::with_capacity(n);
    for el in 0..comp.structure().element_count() {
        for &e in comp.events_at(ElementId::from_raw(el as u32)) {
            rank[e.index()] = order.len() as u32;
            order.push(e);
        }
    }

    let mut key: Vec<u64> = Vec::with_capacity(6 * n + 16);
    key.push(n as u64);
    for &e in &order {
        let ev = comp.event(e);
        key.push(u64::from(ev.class().as_raw()));
        key.push(ev.params().len() as u64);
        for p in ev.params() {
            push_value(&mut key, p);
        }
        key.push(ev.threads().len() as u64);
        for t in ev.threads() {
            key.push(pair(t.thread_type().as_raw(), t.instance()));
        }
    }

    let mut enables: Vec<u64> = comp
        .enable_edges()
        .map(|(from, to)| pair(rank[from.index()], rank[to.index()]))
        .collect();
    enables.sort_unstable();
    key.push(enables.len() as u64);
    key.append(&mut enables);

    let mut precedences: Vec<u64> = comp
        .precedence_edges()
        .iter()
        .map(|&(before, after)| pair(rank[before.index()], rank[after.index()]))
        .collect();
    precedences.sort_unstable();
    key.push(precedences.len() as u64);
    key.append(&mut precedences);

    let mut members: Vec<(u32, u32, u64, u32)> = comp
        .memberships()
        .iter()
        .map(|m| {
            let (tag, raw) = match m.member {
                NodeRef::Element(el) => (0u64, el.as_raw()),
                NodeRef::Group(g) => (1u64, g.as_raw()),
            };
            (rank[m.event.index()], m.group.as_raw(), tag, raw)
        })
        .collect();
    members.sort_unstable();
    key.push(members.len() as u64);
    for (ev, group, tag, raw) in members {
        key.extend([pair(ev, group), (tag << 32) | u64::from(raw)]);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{ComputationBuilder, Structure};

    fn two_element_structure() -> Structure {
        let mut s = Structure::new();
        let cls = s.add_class("Step", &["n"]).unwrap();
        let a = s.add_element("A", &[cls]).unwrap();
        let b = s.add_element("B", &[cls]).unwrap();
        s.add_group("G", &[a.into(), b.into()]).unwrap();
        s
    }

    /// Builds A0, B0, A1 with `enable(A0, B0)` in two different insertion
    /// orders and checks the keys collide.
    #[test]
    fn schedule_order_does_not_change_key() {
        let s = std::sync::Arc::new(two_element_structure());
        let cls = s.class("Step").unwrap();
        let (ea, eb) = (s.element("A").unwrap(), s.element("B").unwrap());

        let mut b1 = ComputationBuilder::new(s.clone());
        let a0 = b1.add_event(ea, cls, vec![Value::Int(1)]).unwrap();
        let b0 = b1.add_event(eb, cls, vec![Value::Int(2)]).unwrap();
        let _a1 = b1.add_event(ea, cls, vec![Value::Int(3)]).unwrap();
        b1.enable(a0, b0).unwrap();
        let c1 = b1.seal().unwrap();

        let mut b2 = ComputationBuilder::new(s.clone());
        let a0 = b2.add_event(ea, cls, vec![Value::Int(1)]).unwrap();
        let a1 = b2.add_event(ea, cls, vec![Value::Int(3)]).unwrap();
        let b0 = b2.add_event(eb, cls, vec![Value::Int(2)]).unwrap();
        let _ = a1;
        b2.enable(a0, b0).unwrap();
        let c2 = b2.seal().unwrap();

        assert_eq!(canonical_key(&c1), canonical_key(&c2));
    }

    #[test]
    fn different_data_or_edges_change_key() {
        let s = std::sync::Arc::new(two_element_structure());
        let cls = s.class("Step").unwrap();
        let (ea, eb) = (s.element("A").unwrap(), s.element("B").unwrap());

        let build = |param: Value, with_edge: bool, with_prec: bool| {
            let mut b = ComputationBuilder::new(s.clone());
            let a0 = b.add_event(ea, cls, vec![param]).unwrap();
            let b0 = b.add_event(eb, cls, vec![Value::Int(0)]).unwrap();
            if with_edge {
                b.enable(a0, b0).unwrap();
            }
            if with_prec {
                b.add_precedence(a0, b0).unwrap();
            }
            b.seal().unwrap()
        };

        let base = canonical_key(&build(Value::Int(1), false, false));
        assert_ne!(
            base,
            canonical_key(&build(Value::Int(2), false, false)),
            "params"
        );
        assert_ne!(
            base,
            canonical_key(&build(Value::Str("1".into()), false, false)),
            "value type"
        );
        assert_ne!(
            base,
            canonical_key(&build(Value::Int(1), true, false)),
            "enables"
        );
        // A bare precedence leaves events and enablement untouched but
        // tightens the temporal order — the key must see it.
        assert_ne!(
            base,
            canonical_key(&build(Value::Int(1), false, true)),
            "precedence"
        );
    }

    #[test]
    fn confirm_key_is_schedule_independent() {
        let s = std::sync::Arc::new(two_element_structure());
        let cls = s.class("Step").unwrap();
        let (ea, eb) = (s.element("A").unwrap(), s.element("B").unwrap());

        let mut b1 = ComputationBuilder::new(s.clone());
        let a0 = b1.add_event(ea, cls, vec![Value::Int(1)]).unwrap();
        let b0 = b1.add_event(eb, cls, vec![Value::Int(2)]).unwrap();
        let _a1 = b1.add_event(ea, cls, vec![Value::Int(3)]).unwrap();
        b1.enable(a0, b0).unwrap();
        let c1 = b1.seal().unwrap();

        let mut b2 = ComputationBuilder::new(s.clone());
        let a0 = b2.add_event(ea, cls, vec![Value::Int(1)]).unwrap();
        let _a1 = b2.add_event(ea, cls, vec![Value::Int(3)]).unwrap();
        let b0 = b2.add_event(eb, cls, vec![Value::Int(2)]).unwrap();
        b2.enable(a0, b0).unwrap();
        let c2 = b2.seal().unwrap();

        assert_eq!(confirm_key(&c1), confirm_key(&c2));
        assert_eq!(c1.fingerprint(), c2.fingerprint());
    }

    #[test]
    fn confirm_key_separates_what_canonical_key_separates() {
        let s = std::sync::Arc::new(two_element_structure());
        let cls = s.class("Step").unwrap();
        let (ea, eb) = (s.element("A").unwrap(), s.element("B").unwrap());

        let build = |param: Value, with_edge: bool, with_prec: bool| {
            let mut b = ComputationBuilder::new(s.clone());
            let a0 = b.add_event(ea, cls, vec![param]).unwrap();
            let b0 = b.add_event(eb, cls, vec![Value::Int(0)]).unwrap();
            if with_edge {
                b.enable(a0, b0).unwrap();
            }
            if with_prec {
                b.add_precedence(a0, b0).unwrap();
            }
            b.seal().unwrap()
        };

        let base = confirm_key(&build(Value::Int(1), false, false));
        assert_ne!(base, confirm_key(&build(Value::Int(2), false, false)));
        assert_ne!(base, confirm_key(&build(Value::Int(1), true, false)));
        // The confirmation key sees a bare precedence through the
        // generator list where the canonical key sees it through the
        // closure.
        assert_ne!(base, confirm_key(&build(Value::Int(1), false, true)));
        assert_ne!(
            confirm_key(&build(Value::Int(1), true, false)),
            confirm_key(&build(Value::Int(1), false, true)),
            "enable vs precedence over the same endpoints"
        );
    }

    /// The load-bearing soundness fact for fingerprint + confirm dedup:
    /// on computations without redundant precedence edges (everything the
    /// simulators produce), confirm-key equality coincides with
    /// canonical-key equality.
    #[test]
    fn confirm_classes_match_canonical_classes_on_simulator_like_output() {
        let s = std::sync::Arc::new(two_element_structure());
        let cls = s.class("Step").unwrap();
        let (ea, eb) = (s.element("A").unwrap(), s.element("B").unwrap());
        // A small family of builder programs: every pair of distinct
        // computations must disagree on both keys; identical rebuilds
        // must agree on both.
        let builds: Vec<Computation> = (0..4)
            .map(|variant| {
                let mut b = ComputationBuilder::new(s.clone());
                let a0 = b.add_event(ea, cls, vec![Value::Int(variant)]).unwrap();
                let b0 = b.add_event(eb, cls, vec![Value::Int(1)]).unwrap();
                if variant % 2 == 0 {
                    b.enable(a0, b0).unwrap();
                }
                b.seal().unwrap()
            })
            .collect();
        for (i, x) in builds.iter().enumerate() {
            for y in &builds[i..] {
                assert_eq!(
                    canonical_key(x) == canonical_key(y),
                    confirm_key(x) == confirm_key(y),
                );
            }
        }
    }
}
