//! Prefix-sharing incremental restriction checking along the DFS tree.
//!
//! [`verify_system`](crate::verify_system) explores runs with a
//! checkpoint/undo DFS whose leaves share long prefixes, yet the batch
//! pipeline re-does the whole seal → project → check chain per leaf. The
//! [`IncrChecker`] keeps a *projection-and-verdict state synchronised
//! with the growing program builder*: at each leaf it rewinds to the
//! longest agreed prefix (found by diffing the builder's event list and
//! undo journals) and replays only the fresh suffix — matching the
//! correspondence, projecting enable edges through insignificant events,
//! assigning thread tags, and advancing every compiled restriction
//! ([`gem_logic::incr`]) by O(formula) per event.
//!
//! A leaf that finishes **clean** — no incremental violation, no
//! condition the incremental pipeline cannot reproduce — is guaranteed to
//! satisfy the specification, so the caller skips seal/projection/check
//! entirely. Everything else returns [`LeafStatus::Fallback`] and the
//! caller runs the unchanged batch pipeline, which keeps verdicts,
//! failure details, artifacts, and blame byte-identical to a batch-only
//! sweep (violating leaves *adopt the batch verdict wholesale*; the
//! incremental layer only ever proves cleanliness).
//!
//! ## Soundness in one paragraph
//!
//! For simulation-grown builders every enable edge targets the newest
//! event, so the temporal order between existing events is final and the
//! downsets of a prefix remain downsets of every extension. The compiled
//! `◻∀*` shapes check each variable binding exactly once — when its
//! newest event arrives — and a clean verdict at the leaf means *no*
//! binding over *any* downset falsifies, which implies the batch checker
//! (which samples history sequences of the same computation) also finds
//! no counterexample. Builders that violate the monotone-journal
//! discipline (retroactive edges) are detected and disable the checker
//! for the rest of the sweep; builders carrying memberships or foreign
//! thread tags fall back per leaf.

use std::sync::Arc;

use gem_core::{ClassId, ComputationBuilder, ElementId, EventId, Structure, ThreadTypeId, Value};
use gem_logic::incr::{compile, eval_full, Compiled, IncrWorld};
use gem_logic::{EventSel, Formula};
use gem_spec::{Specification, ThreadSpec};

use crate::correspondence::{Correspondence, Pair};

/// When [`verify_system`](crate::verify_system) uses the incremental
/// checker. The checker is always safe — it proves cleanliness or falls
/// back to batch — so the modes only control whether the attempt is made.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IncrCheck {
    /// Use it when the system exposes a trace builder and every
    /// restriction compiled; skip the per-leaf work entirely when the
    /// whole specification fell back. (Default.)
    #[default]
    Auto,
    /// Attempt synchronisation on every leaf even under a global
    /// fallback, so the `logic.incr.*` per-leaf counters are reported.
    On,
    /// Never use the incremental checker.
    Off,
}

/// Verdict of synchronising to one leaf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeafStatus {
    /// Every restriction provably holds of this leaf's computation; the
    /// caller may skip the batch pipeline.
    Clean,
    /// The leaf needs the batch pipeline (incremental violation, an
    /// unsupported condition, or the checker is disabled).
    Fallback,
}

/// One restriction, compiled (or not) for incremental checking.
struct CompiledRestriction {
    name: String,
    formula: Formula,
    compiled: Option<Compiled>,
}

/// Synced copy of one program event's identity, for prefix diffing.
struct ProgMeta {
    element: ElementId,
    class: ClassId,
    params: Vec<Value>,
}

impl ProgMeta {
    fn matches(&self, ev: &gem_core::Event) -> bool {
        self.element == ev.element() && self.class == ev.class() && self.params == ev.params()
    }
}

/// Dense parallel arrays over the incrementally projected (spec-side)
/// events, in emission order.
#[derive(Default)]
struct SpecEvents {
    prog_of: Vec<u32>,
    element: Vec<ElementId>,
    class: Vec<ClassId>,
    seq: Vec<u32>,
    params: Vec<Vec<Value>>,
    /// Thread-path matches: `(thread spec, path, stage, head spec id)`.
    /// The head id is the canonical instance — equal head ⇔ equal
    /// instance, which is all the thread predicates observe.
    tags: Vec<Vec<(u16, u16, u16, u32)>>,
    enables_out: Vec<Vec<u32>>,
    enablers_in: Vec<Vec<u32>>,
    /// Spec enable edges in insertion order; targets are non-decreasing
    /// (each edge lands while its target is the newest spec event).
    edge_journal: Vec<(u32, u32)>,
    /// Spec events per problem element, in element order.
    by_element: Vec<Vec<u32>>,
}

impl SpecEvents {
    fn len(&self) -> usize {
        self.prog_of.len()
    }
}

/// The prefix-synchronised incremental checker; see the module docs.
pub struct IncrChecker {
    problem: Arc<Structure>,
    pairs: Vec<Pair>,
    threads: Vec<ThreadSpec>,
    check_program_legality: bool,
    restrictions: Vec<CompiledRestriction>,
    /// Set at construction when any restriction (or thread declaration)
    /// cannot be handled: the whole sweep uses batch checking.
    global_fallback: bool,
    /// Sticky runtime disable: a non-monotone undo journal broke the
    /// prefix-finality assumption, so no later leaf may trust the state.
    disabled: bool,

    // Program-side synced state.
    prog: Vec<ProgMeta>,
    enables: Vec<(u32, u32)>,
    precedences: Vec<(u32, u32)>,
    spec_of: Vec<Option<u32>>,
    /// For insignificant events: the significant spec events that reach
    /// them through insignificant-only enable paths.
    bridge: Vec<Vec<u32>>,

    spec: SpecEvents,
    /// Per restriction: program-event indices where an incremental
    /// violation was found (ascending; sticky below that point).
    violations: Vec<Vec<u32>>,
    /// Program-event indices at which a condition arose that only the
    /// batch pipeline reproduces (legality/projection failures, ambiguous
    /// thread tags, evaluation errors). Ascending.
    batch_required: Vec<u32>,
}

fn obs_add(key: &str, n: u64) {
    if gem_obs::ambient::active() {
        gem_obs::ambient::add(key, n);
    }
}

impl IncrChecker {
    /// Compiles `problem`'s restrictions for incremental checking against
    /// projections through `corr`. Fallback decisions are recorded per
    /// restriction under `logic.incr.restriction.*`.
    pub fn new(
        problem: &Specification,
        corr: &Correspondence,
        check_program_legality: bool,
    ) -> Self {
        let mut restrictions = Vec::new();
        let mut compiled_n = 0u64;
        let mut fallback_n = 0u64;
        let mut global_fallback = false;
        for r in problem.restrictions() {
            let compiled = match compile(&r.formula) {
                Ok(c) => {
                    compiled_n += 1;
                    obs_add(&format!("logic.incr.restriction.{}.incremental", r.name), 1);
                    Some(c)
                }
                Err(reason) => {
                    fallback_n += 1;
                    global_fallback = true;
                    obs_add(
                        &format!("logic.incr.restriction.{}.fallback.{}", r.name, reason),
                        1,
                    );
                    None
                }
            };
            restrictions.push(CompiledRestriction {
                name: r.name.clone(),
                formula: r.formula.clone(),
                compiled,
            });
        }
        // Thread-path selectors constraining a concrete instance would
        // need the final assignment's numbering; everything else the tag
        // engine reproduces.
        if problem
            .threads()
            .iter()
            .any(|t| t.paths.iter().flatten().any(|sel| sel.thread.is_some()))
        {
            global_fallback = true;
            obs_add("logic.incr.threads.fallback", 1);
        }
        obs_add("logic.incr.restrictions.compiled", compiled_n);
        obs_add("logic.incr.restrictions.fallback", fallback_n);
        let n_restrictions = restrictions.len();
        Self {
            problem: problem.structure_arc(),
            pairs: corr.pairs().to_vec(),
            threads: problem.threads().to_vec(),
            check_program_legality,
            restrictions,
            global_fallback,
            disabled: false,
            prog: Vec::new(),
            enables: Vec::new(),
            precedences: Vec::new(),
            spec_of: Vec::new(),
            bridge: Vec::new(),
            spec: SpecEvents {
                by_element: vec![Vec::new(); problem.structure().element_count()],
                ..SpecEvents::default()
            },
            violations: vec![Vec::new(); n_restrictions],
            batch_required: Vec::new(),
        }
    }

    /// True when the whole sweep must use batch checking (some
    /// restriction or thread declaration did not compile). The caller can
    /// skip per-leaf synchronisation entirely.
    pub fn global_fallback(&self) -> bool {
        self.global_fallback
    }

    /// Synchronises the checker with the builder's current (leaf) state:
    /// rewinds to the agreed prefix, replays the fresh suffix, and
    /// reports whether the leaf is provably clean.
    pub fn sync_to(&mut self, b: &ComputationBuilder) -> LeafStatus {
        if self.global_fallback || self.disabled {
            obs_add("logic.incr.leaf_fallback", 1);
            return LeafStatus::Fallback;
        }
        obs_add("logic.incr.syncs", 1);

        let bev = b.events();
        // Longest common prefix of the event lists…
        let mut estar = {
            let max = self.prog.len().min(bev.len());
            let mut l = 0usize;
            while l < max && self.prog[l].matches(&bev[l]) {
                l += 1;
            }
            l
        };
        // …capped by the first divergence of either undo journal: every
        // synced entry at or beyond the divergent target must be undone.
        if let Some(t) = divergence_bound(&self.enables, b.enable_journal()) {
            estar = estar.min(t);
        }
        if let Some(t) = divergence_bound(&self.precedences, b.precedence_journal()) {
            estar = estar.min(t);
        }

        self.rewind(estar);
        obs_add("logic.incr.events_reused", estar as u64);
        obs_add("logic.incr.events_replayed", (bev.len() - estar) as u64);

        // Replay the fresh suffix, consuming journal entries by target.
        let mut epos = self.enables.len();
        let mut ppos = self.precedences.len();
        let bej = b.enable_journal();
        let bpj = b.precedence_journal();
        for i in estar..bev.len() {
            self.process_event(b, i);
            // Enable edges landing on the event just emitted.
            while epos < bej.len() && bej[epos].1.index() == i {
                let from = bej[epos].0.index();
                if from >= i {
                    return self.disable();
                }
                self.consume_enable(b, from, i);
                epos += 1;
            }
            if epos < bej.len() && bej[epos].1.index() < i {
                return self.disable();
            }
            while ppos < bpj.len() && bpj[ppos].1.index() == i {
                let from = bpj[ppos].0.index();
                if from >= i {
                    return self.disable();
                }
                self.precedences.push((from as u32, i as u32));
                ppos += 1;
            }
            if ppos < bpj.len() && bpj[ppos].1.index() < i {
                return self.disable();
            }
            self.finalize_event(b, i);
        }
        if epos < bej.len() || ppos < bpj.len() {
            // Entries targeting events that were already finalized:
            // retroactive edges break prefix finality.
            return self.disable();
        }

        // Conditions the incremental state does not model.
        if !b.memberships().is_empty() || b.tag_count() > 0 {
            obs_add("logic.incr.leaf_fallback", 1);
            return LeafStatus::Fallback;
        }
        if !self.batch_required.is_empty() || self.violations.iter().any(|v| !v.is_empty()) {
            obs_add("logic.incr.leaf_fallback", 1);
            return LeafStatus::Fallback;
        }
        // Non-temporal restrictions: immediate assertions on the one full
        // history, decided structurally at the leaf.
        let world = SpecWorld { chk: self, b };
        for r in &self.restrictions {
            if matches!(r.compiled, Some(Compiled::Leaf)) {
                match eval_full(&r.formula, &world) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => {
                        obs_add("logic.incr.leaf_fallback", 1);
                        return LeafStatus::Fallback;
                    }
                }
            }
        }
        obs_add("logic.incr.leaf_clean", 1);
        LeafStatus::Clean
    }

    fn disable(&mut self) -> LeafStatus {
        self.disabled = true;
        obs_add("logic.incr.disabled", 1);
        obs_add("logic.incr.leaf_fallback", 1);
        LeafStatus::Fallback
    }

    /// Truncates all synced state to the first `estar` program events.
    fn rewind(&mut self, estar: usize) {
        for v in &mut self.violations {
            while v.last().is_some_and(|&p| p as usize >= estar) {
                v.pop();
            }
        }
        while self
            .batch_required
            .last()
            .is_some_and(|&p| p as usize >= estar)
        {
            self.batch_required.pop();
        }
        while self
            .enables
            .last()
            .is_some_and(|&(_, t)| t as usize >= estar)
        {
            self.enables.pop();
        }
        while self
            .precedences
            .last()
            .is_some_and(|&(_, t)| t as usize >= estar)
        {
            self.precedences.pop();
        }
        // Spec events are appended in program order, so the survivors are
        // a prefix.
        let sstar = self.spec.prog_of.partition_point(|&p| (p as usize) < estar);
        while self
            .spec
            .edge_journal
            .last()
            .is_some_and(|&(_, t)| t as usize >= sstar)
        {
            let (from, to) = self.spec.edge_journal.pop().expect("checked non-empty");
            let popped = self.spec.enables_out[from as usize].pop();
            debug_assert_eq!(popped, Some(to), "edge journal mirrors enables_out");
        }
        for sid in (sstar..self.spec.len()).rev() {
            let el = self.spec.element[sid];
            let popped = self.spec.by_element[el.index()].pop();
            debug_assert_eq!(popped, Some(sid as u32), "element chains append-only");
        }
        self.spec.prog_of.truncate(sstar);
        self.spec.element.truncate(sstar);
        self.spec.class.truncate(sstar);
        self.spec.seq.truncate(sstar);
        self.spec.params.truncate(sstar);
        self.spec.tags.truncate(sstar);
        self.spec.enables_out.truncate(sstar);
        self.spec.enablers_in.truncate(sstar);
        self.prog.truncate(estar);
        self.spec_of.truncate(estar);
        self.bridge.truncate(estar);
    }

    fn push_batch(&mut self, i: usize) {
        if self.batch_required.last() != Some(&(i as u32)) {
            self.batch_required.push(i as u32);
        }
    }

    /// Registers program event `i`: identity copy, program legality, and
    /// the correspondence match (creating the projected event).
    fn process_event(&mut self, b: &ComputationBuilder, i: usize) {
        let ev = &b.events()[i];
        self.prog.push(ProgMeta {
            element: ev.element(),
            class: ev.class(),
            params: ev.params().to_vec(),
        });
        if self.check_program_legality {
            let ps = b.structure();
            if !ps.element_info(ev.element()).allows(ev.class())
                || ps.class_info(ev.class()).arity() != ev.params().len()
            {
                self.push_batch(i);
            }
        }
        let Some(pair_ix) = self.pairs.iter().position(|p| p.program.matches(ev)) else {
            self.spec_of.push(None);
            self.bridge.push(Vec::new());
            return;
        };
        let pair = &self.pairs[pair_ix];
        let el = pair.problem_element;
        let cl = pair.problem_class;
        let arity = self.problem.class_info(cl).arity();
        let mut params = vec![Value::Unit; arity];
        let mut bad_param = false;
        for &(prog_idx, prob_idx) in &pair.params {
            match ev.param(prog_idx) {
                Some(v) => {
                    if prob_idx < arity {
                        params[prob_idx] = v.clone();
                    }
                }
                None => bad_param = true,
            }
        }
        let legal = self.problem.element_info(el).allows(cl);
        let sid = self.spec.len() as u32;
        self.spec.prog_of.push(i as u32);
        self.spec.element.push(el);
        self.spec.class.push(cl);
        self.spec
            .seq
            .push(self.spec.by_element[el.index()].len() as u32);
        self.spec.params.push(params);
        self.spec.tags.push(Vec::new());
        self.spec.enables_out.push(Vec::new());
        self.spec.enablers_in.push(Vec::new());
        self.spec.by_element[el.index()].push(sid);
        self.spec_of.push(Some(sid));
        self.bridge.push(Vec::new());
        if bad_param || !legal {
            self.push_batch(i);
        }
    }

    /// Consumes a program enable edge `from ⊳ i` (with `i` the newest
    /// event): program-side legality, then the projected edge(s) —
    /// bridged through insignificant events exactly as
    /// [`project`](crate::project) does.
    fn consume_enable(&mut self, b: &ComputationBuilder, from: usize, i: usize) {
        self.enables.push((from as u32, i as u32));
        if self.check_program_legality {
            let ps = b.structure();
            let (ef, et) = (&b.events()[from], &b.events()[i]);
            if !ps.may_enable(ef.element(), et.element(), et.class()) {
                self.push_batch(i);
            }
        }
        let sources: Vec<u32> = match self.spec_of[from] {
            Some(s) => vec![s],
            None => self.bridge[from].clone(),
        };
        if sources.is_empty() {
            return;
        }
        match self.spec_of[i] {
            Some(t) => {
                for s in sources {
                    if self.spec.enables_out[s as usize].contains(&t) {
                        continue;
                    }
                    if !self.problem.may_enable(
                        self.spec.element[s as usize],
                        self.spec.element[t as usize],
                        self.spec.class[t as usize],
                    ) {
                        self.push_batch(i);
                    }
                    self.spec.enables_out[s as usize].push(t);
                    self.spec.enablers_in[t as usize].push(s);
                    self.spec.edge_journal.push((s, t));
                }
            }
            None => {
                for s in sources {
                    if !self.bridge[i].contains(&s) {
                        self.bridge[i].push(s);
                    }
                }
            }
        }
    }

    /// After all of event `i`'s edges are in: element-order consistency,
    /// thread tags, and the per-event binding check of every compiled
    /// `◻∀*` restriction.
    fn finalize_event(&mut self, b: &ComputationBuilder, i: usize) {
        let Some(t) = self.spec_of[i] else { return };
        let t = t as usize;

        // Projection rejects concurrent same-element significant events;
        // consecutive-pair order suffices by transitivity (emission order
        // is consistent with temporal order for monotone builders).
        let chain = &self.spec.by_element[self.spec.element[t].index()];
        if chain.len() >= 2 {
            let prev = chain[chain.len() - 2] as usize;
            let prev_prog = EventId::from_raw(self.spec.prog_of[prev]);
            if !b.order_precedes(prev_prog, EventId::from_raw(i as u32)) {
                self.push_batch(i);
            }
        }

        // Thread tags, mirroring `infer_threads`: one instance per head
        // event (first matching path), propagated along enable edges that
        // continue the path. The head's spec id is the canonical
        // instance.
        let mut entries: Vec<(u16, u16, u16, u32)> = Vec::new();
        for (si, ts) in self.threads.iter().enumerate() {
            for (pi, path) in ts.paths.iter().enumerate() {
                let Some(head) = path.first() else { continue };
                if self.sel_matches_spec(head, t) {
                    entries.push((si as u16, pi as u16, 0, t as u32));
                    break;
                }
            }
        }
        for ei in 0..self.spec.enablers_in[t].len() {
            let s = self.spec.enablers_in[t][ei] as usize;
            for ti in 0..self.spec.tags[s].len() {
                let (si, pi, stage, head) = self.spec.tags[s][ti];
                let path = &self.threads[si as usize].paths[pi as usize];
                let next = stage as usize + 1;
                if next < path.len() && self.sel_matches_spec(&path[next], t) {
                    let e = (si, pi, next as u16, head);
                    if !entries.contains(&e) {
                        entries.push(e);
                    }
                }
            }
        }
        // Two distinct instances of one thread type on one event make
        // `thread_instance` ambiguous — only the full assignment
        // disambiguates.
        let mut ambiguous = false;
        for (si, _, _, head) in &entries {
            let ty = self.threads[*si as usize].ty;
            if entries
                .iter()
                .any(|(sj, _, _, h2)| self.threads[*sj as usize].ty == ty && h2 != head)
            {
                ambiguous = true;
                break;
            }
        }
        self.spec.tags[t] = entries;
        if ambiguous {
            self.push_batch(i);
        }

        // A pending batch condition poisons the whole leaf, so binding
        // enumeration would be wasted work; sticky violations likewise
        // skip their restriction (the leaf verdict is already Fallback —
        // this is the early-exit prune).
        if !self.batch_required.is_empty() {
            return;
        }
        let mut found: Vec<usize> = Vec::new();
        let mut errored = false;
        {
            let world = SpecWorld { chk: self, b };
            for (ri, r) in self.restrictions.iter().enumerate() {
                if !self.violations[ri].is_empty() {
                    continue;
                }
                if let Some(Compiled::Boxed(shape)) = &r.compiled {
                    match shape.check_event(&world, t) {
                        Ok(true) => found.push(ri),
                        Ok(false) => {}
                        Err(_) => errored = true,
                    }
                }
            }
        }
        for ri in found {
            obs_add("logic.incr.violations", 1);
            obs_add(
                &format!(
                    "logic.incr.restriction.{}.violations",
                    self.restrictions[ri].name
                ),
                1,
            );
            self.violations[ri].push(i as u32);
        }
        if errored {
            self.push_batch(i);
        }
    }

    /// Selector match over a projected event (thread constraints are
    /// excluded at construction).
    fn sel_matches_spec(&self, sel: &EventSel, t: usize) -> bool {
        sel.element.is_none_or(|el| self.spec.element[t] == el)
            && sel.class.is_none_or(|c| self.spec.class[t] == c)
            && sel
                .params
                .iter()
                .all(|(i, v)| self.spec.params[t].get(*i) == Some(v))
    }
}

/// First journal index where the synced copy and the builder disagree,
/// mapped to the smallest event index that must be rewound; `None` when
/// the copy is a prefix of the builder's journal.
fn divergence_bound(mine: &[(u32, u32)], theirs: &[(EventId, EventId)]) -> Option<usize> {
    let n = mine.len().min(theirs.len());
    for j in 0..n {
        let (mf, mt) = mine[j];
        let (tf, tt) = theirs[j];
        if mf as usize != tf.index() || mt as usize != tt.index() {
            return Some((mt as usize).min(tt.index()));
        }
    }
    (mine.len() > n).then(|| mine[n].1 as usize)
}

/// [`IncrWorld`] view over the synced projection, with order queries
/// delegated to the program builder's incrementally maintained
/// reachability (the projected temporal order *is* the program order
/// restricted to significant events).
struct SpecWorld<'a> {
    chk: &'a IncrChecker,
    b: &'a ComputationBuilder,
}

impl IncrWorld for SpecWorld<'_> {
    fn event_count(&self) -> usize {
        self.chk.spec.len()
    }
    fn element_of(&self, e: usize) -> ElementId {
        self.chk.spec.element[e]
    }
    fn class_of(&self, e: usize) -> ClassId {
        self.chk.spec.class[e]
    }
    fn seq_of(&self, e: usize) -> u32 {
        self.chk.spec.seq[e]
    }
    fn params_of(&self, e: usize) -> &[Value] {
        &self.chk.spec.params[e]
    }
    fn thread_instance(&self, e: usize, ty: ThreadTypeId) -> Option<u32> {
        self.chk.spec.tags[e]
            .iter()
            .find(|(si, _, _, _)| self.chk.threads[*si as usize].ty == ty)
            .map(|&(_, _, _, head)| head)
    }
    fn precedes(&self, a: usize, b: usize) -> bool {
        self.b.order_precedes(
            EventId::from_raw(self.chk.spec.prog_of[a]),
            EventId::from_raw(self.chk.spec.prog_of[b]),
        )
    }
    fn enables(&self, a: usize, b: usize) -> bool {
        self.chk.spec.enables_out[a].contains(&(b as u32))
    }
    fn enabled_from(&self, e: usize) -> &[u32] {
        &self.chk.spec.enables_out[e]
    }
    fn nth_at(&self, element: ElementId, i: usize) -> Option<usize> {
        self.chk
            .spec
            .by_element
            .get(element.index())?
            .get(i)
            .map(|&s| s as usize)
    }
    fn param_index(&self, class: ClassId, name: &str) -> Option<usize> {
        self.chk.problem.class_info(class).param_index(name)
    }
}
