//! `PROG sat P`: exhaustive bounded verification of a program against a
//! problem specification (§9).
//!
//! [`verify_system`] is the machine-checked stand-in for the paper's hand
//! proofs (DESIGN.md substitution): it explores every schedule of a
//! program system, extracts the GEM computation of each run, projects it
//! onto the significant objects, and checks every restriction of the
//! problem specification. Deadlocked runs (terminal but incomplete) are
//! reported separately — the paper's "lack of deadlock" claims.

use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

use gem_core::Computation;
use gem_lang::{Explorer, System, TruncationReason};
use gem_logic::Strategy;
use gem_obs::{NoopProbe, Probe, Span};
use gem_spec::{SpecReport, Specification};

use crate::correspondence::{project, Correspondence, ProjectError};
use crate::dedup::{confirm_key, CanonicalKey};
use crate::forensics::{self, ArtifactRecord, ArtifactSink};
use crate::incr::{IncrCheck, IncrChecker, LeafStatus};

/// Verdict of checking one computation: `None` if it satisfies the
/// specification, otherwise the violated names plus the failure detail.
/// A pure function of the computation, which is what makes caching it per
/// canonical key sound.
type CheckVerdict = Option<(Vec<String>, String)>;

/// Full result of checking one program computation against a problem —
/// the verdict plus the intermediate products forensics needs (the
/// projected computation and the per-restriction report for blame).
#[derive(Clone, Debug)]
pub struct RunCheck {
    /// `None` if the run satisfies the specification, otherwise the
    /// violated names plus a human-readable detail.
    pub verdict: CheckVerdict,
    /// The program computation projected onto the significant objects.
    pub projected: Computation,
    /// The problem specification's report on the projected computation,
    /// or `None` if a restriction formula failed to evaluate (that error
    /// is then the verdict).
    pub spec_report: Option<SpecReport>,
}

/// Checks one program computation against `problem`: optional program
/// legality, projection through `corr`, then every restriction. Pure in
/// the computation — [`verify_system`] caches the verdict per canonical
/// key under deduplication, and `gem replay` re-runs it on a recorded
/// schedule to reproduce a verdict.
///
/// # Errors
///
/// Returns [`ProjectError`] if the correspondence is inconsistent with
/// the computation. Restriction evaluation errors are a *verdict*
/// (`evaluation-error`), not an `Err`.
pub fn check_computation(
    program_comp: &Computation,
    problem: &Specification,
    corr: &Correspondence,
    strategy: Strategy,
    check_program_legality: bool,
) -> Result<RunCheck, ProjectError> {
    let mut violated = Vec::new();
    let mut detail = String::new();
    if check_program_legality {
        let legality = gem_core::check_legality(program_comp);
        if !legality.is_empty() {
            violated.push("program-legality".to_owned());
            detail = legality[0].describe(program_comp);
        }
    }
    let projected = project(program_comp, problem.structure_arc(), corr)?;
    let spec_report = match problem.check(&projected, strategy) {
        Ok(report) => {
            if !report.legality.is_empty() {
                violated.push("projection-legality".to_owned());
                if detail.is_empty() {
                    detail = report.legality[0].describe(&projected);
                }
            }
            for name in report.failed() {
                violated.push(name.to_owned());
            }
            if detail.is_empty() && !violated.is_empty() {
                detail = report.to_string();
            }
            Some(report)
        }
        Err(e) => {
            violated.push("evaluation-error".to_owned());
            detail = e.to_string();
            None
        }
    };
    Ok(RunCheck {
        verdict: (!violated.is_empty()).then_some((violated, detail)),
        projected,
        spec_report,
    })
}

/// One failing run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunFailure {
    /// Index of the run in exploration order.
    pub run: usize,
    /// Names of legality categories or restrictions violated.
    pub violated: Vec<String>,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// Outcome of verifying a program against a problem specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyOutcome {
    /// Number of maximal runs explored.
    pub runs: usize,
    /// Number of deadlocked runs (terminal but incomplete).
    pub deadlocks: usize,
    /// Restriction/legality failures across runs (capped at
    /// [`VerifyOptions::max_failures`]).
    pub failures: Vec<RunFailure>,
    /// Why exploration stopped short, or `None` if it was exhaustive.
    pub truncation: Option<TruncationReason>,
}

impl VerifyOutcome {
    /// True if every explored run completed and satisfied the
    /// specification.
    pub fn ok(&self) -> bool {
        self.deadlocks == 0 && self.failures.is_empty()
    }

    /// True if some bound truncated exploration.
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }

    /// True if the verdict covers *all* schedules (no truncation).
    pub fn exhaustive(&self) -> bool {
        !self.truncated()
    }
}

impl fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} run(s): {} deadlock(s), {} failing run(s)",
            self.runs,
            self.deadlocks,
            self.failures.len(),
        )?;
        if let Some(reason) = self.truncation {
            write!(f, " (truncated: {reason})")?;
        }
        for fail in &self.failures {
            write!(f, "\n  run {}: {}", fail.run, fail.violated.join(", "))?;
        }
        Ok(())
    }
}

/// Options for [`verify_system`].
#[derive(Clone)]
pub struct VerifyOptions {
    /// Bounds on schedule exploration.
    pub explorer: Explorer,
    /// Strategy for temporal restrictions on each projected computation.
    pub strategy: Strategy,
    /// Stop after this many failing runs (a few witnesses suffice).
    pub max_failures: usize,
    /// Also require the *program* computation itself to be GEM-legal.
    pub check_program_legality: bool,
    /// Prefix-sharing incremental restriction checking along the DFS
    /// tree (see [`crate::incr`]): leaves proven clean skip the whole
    /// seal → project → check pipeline. Verdicts, failures, and
    /// artifacts are identical in every mode; only the `logic.*`,
    /// `restriction.*`, `project.*`, phase-timer, and dedup counters
    /// reflect the skipped work.
    pub incr_check: IncrCheck,
    /// Instrumentation sink. The default [`NoopProbe`] costs one enabled
    /// check per run; see `gem_obs::StatsProbe` for aggregation. The probe
    /// is also installed as the ambient probe for the duration of the
    /// sweep, so the logic/core layers report into it.
    pub probe: Arc<dyn Probe>,
    /// When set, the first failing or deadlocked run is dumped as a
    /// self-contained counterexample artifact directory (schedule,
    /// computation, blame, dot renderings), and `outcome.json` records
    /// the sweep outcome — see [`crate::forensics`].
    pub artifacts: Option<ArtifactSink>,
}

impl fmt::Debug for VerifyOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyOptions")
            .field("explorer", &self.explorer)
            .field("strategy", &self.strategy)
            .field("max_failures", &self.max_failures)
            .field("check_program_legality", &self.check_program_legality)
            .field("incr_check", &self.incr_check)
            .field("probe_enabled", &self.probe.enabled())
            .field("artifacts", &self.artifacts.as_ref().map(|s| &s.dir))
            .finish()
    }
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            explorer: Explorer::default(),
            strategy: Strategy::Linearizations { limit: 20_000 },
            max_failures: 3,
            check_program_legality: true,
            incr_check: IncrCheck::default(),
            probe: Arc::new(NoopProbe),
            artifacts: None,
        }
    }
}

/// Verifies `PROG sat P`: explores every schedule of `sys`, extracts each
/// run's computation with `extract`, projects through `corr`, and checks
/// `problem`'s restrictions.
///
/// Schedules are explored with [`Explorer::par_for_each_run_probed`]:
/// serial on the calling thread for `explorer.jobs == 1` (the default),
/// otherwise a worker pool whose ordered-commit protocol guarantees the
/// outcome — run order, first failure, counterexample schedules, and
/// probe totals — is identical to the serial sweep.
///
/// With [`Explorer::dedup_computations`] set, trace-equivalent runs (runs
/// sealing to the same computation, see [`crate::dedup`]) are checked once
/// and their verdict replayed on later sightings. Every run is still
/// enumerated and counted, so the returned [`VerifyOutcome`] is identical
/// with deduplication on or off; only the redundant projection and
/// restriction-checking work is skipped. Cache hits/misses are reported on
/// the probe as `verify.dedup.hits` / `verify.dedup.misses`.
///
/// # Errors
///
/// Returns [`ProjectError`] if the correspondence is inconsistent with a
/// generated computation (a setup error rather than a verification
/// verdict). Malformed restriction formulas also surface as an error
/// string via the panic-free path: they are reported as failures with the
/// evaluation error in `detail`.
pub fn verify_system<S>(
    sys: &S,
    problem: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation,
    options: &VerifyOptions,
) -> Result<VerifyOutcome, ProjectError>
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut runs = 0usize;
    let mut deadlocks = 0usize;
    let mut failures: Vec<RunFailure> = Vec::new();
    let mut project_error: Option<ProjectError> = None;

    let dedup = options.explorer.dedup_computations;
    // Verdict cache indexed by the builder-maintained incremental
    // fingerprint (free to read per run). Each bucket holds the exact
    // closure-free confirmation keys that hashed there, so a fingerprint
    // collision degrades to a linear exact compare — dedup stays exact,
    // never probabilistic.
    let mut verdicts: HashMap<u64, Vec<(CanonicalKey, CheckVerdict)>> = HashMap::new();
    let (mut dedup_hits, mut dedup_misses) = (0u64, 0u64);
    let mut artifact_record: Option<ArtifactRecord> = None;

    // Checks one computation against the specification. Pure in the
    // computation, so the verdict is cacheable per canonical key.
    let evaluate = |program_comp: &Computation| -> Result<RunCheck, ProjectError> {
        check_computation(
            program_comp,
            problem,
            corr,
            options.strategy,
            options.check_program_legality,
        )
    };

    let probe = options.probe.as_ref();
    // Deep layers (restriction checking, formula evaluation, closure and
    // history construction) report through the ambient probe. Installed
    // only for an enabled probe so the default stays on its fast path.
    let _ambient = probe
        .enabled()
        .then(|| gem_obs::ambient::install(options.probe.clone()));
    let _total = Span::enter(probe, "verify");

    // Phase attribution (see `gem_obs::profile`): each per-run stage is
    // timed with a manual clock read gated on `probe.enabled()`, and the
    // time the sweep spends *outside* those stages — schedule
    // enumeration, state stepping, backtracking — is emitted afterwards
    // as the `phase.explore` residual, so the phase timers partition the
    // `verify` span.
    let probing = probe.enabled();
    let sweep_started = probing.then(Instant::now);
    let mut phased_ns = 0u64;
    let elapsed_ns =
        |t: Instant| -> u64 { u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX) };

    // Prefix-sharing incremental checker (see `crate::incr`): compiled
    // once per sweep (after the ambient install, so the per-restriction
    // fallback decisions land in the stats), synchronised per leaf. In
    // `Auto` mode a globally-fallen-back compilation drops the per-leaf
    // work entirely.
    let mut incr_checker = (options.incr_check != IncrCheck::Off)
        .then(|| IncrChecker::new(problem, corr, options.check_program_legality))
        .filter(|c| options.incr_check == IncrCheck::On || !c.global_fallback());

    let stats = options
        .explorer
        .par_for_each_run_probed(sys, probe, |state, path| {
            runs += 1;
            let deadlocked = !sys.is_complete(state);
            if deadlocked {
                // Deadlock is judged on the *state* (terminal but
                // incomplete), not the computation, so it is counted per
                // run and never deduplicated.
                deadlocks += 1;
            }
            // A leaf the incremental checker proves clean needs no seal,
            // no projection, and no batch check. Deadlocked leaves always
            // take the batch path so deadlock artifacts and forensics are
            // untouched; violating or unsupported leaves fall back and
            // the batch verdict is adopted wholesale.
            if let Some(chk) = incr_checker.as_mut() {
                if let Some(builder) = sys.trace_builder(state) {
                    let incr_started = probing.then(Instant::now);
                    let status = chk.sync_to(builder);
                    if let Some(t) = incr_started {
                        let ns = elapsed_ns(t);
                        phased_ns += ns;
                        probe.time_ns("phase.check_incr", ns);
                    }
                    if status == LeafStatus::Clean && !deadlocked {
                        return ControlFlow::Continue(());
                    }
                }
            }
            let seal_started = probing.then(Instant::now);
            let program_comp = extract(state);
            if let Some(t) = seal_started {
                let ns = elapsed_ns(t);
                phased_ns += ns;
                probe.time_ns("phase.seal", ns);
            }
            // The rolling fingerprint is maintained by the builder during
            // exploration, so reading it here is free; the exact
            // confirmation key (closure-free, O(events + edges)) is what
            // the per-run `phase.canonical_key` timer now measures.
            let key = if dedup {
                let key_started = probing.then(Instant::now);
                let k = (program_comp.fingerprint(), confirm_key(&program_comp));
                if let Some(t) = key_started {
                    let ns = elapsed_ns(t);
                    phased_ns += ns;
                    probe.time_ns("phase.canonical_key", ns);
                }
                Some(k)
            } else {
                None
            };
            let cached = if dedup {
                let lookup_started = probing.then(Instant::now);
                let c = key.as_ref().and_then(|(fp, k)| {
                    verdicts
                        .get(fp)?
                        .iter()
                        .find(|(existing, _)| existing == k)
                        .map(|(_, v)| v.clone())
                });
                if let Some(t) = lookup_started {
                    let ns = elapsed_ns(t);
                    phased_ns += ns;
                    probe.time_ns("phase.dedup_lookup", ns);
                }
                c
            } else {
                None
            };
            let mut fresh_check: Option<RunCheck> = None;
            let verdict = match cached {
                Some(cached) => {
                    dedup_hits += 1;
                    cached
                }
                None => {
                    if dedup {
                        dedup_misses += 1;
                    }
                    let check_started = probing.then(Instant::now);
                    let check = match evaluate(&program_comp) {
                        Ok(v) => v,
                        Err(e) => {
                            project_error = Some(e);
                            return ControlFlow::Break(());
                        }
                    };
                    if let Some(t) = check_started {
                        let ns = elapsed_ns(t);
                        phased_ns += ns;
                        probe.time_ns("phase.check", ns);
                    }
                    let fresh = check.verdict.clone();
                    if let Some((fp, k)) = key {
                        verdicts.entry(fp).or_default().push((k, fresh.clone()));
                    }
                    fresh_check = Some(check);
                    fresh
                }
            };
            // First failing or deadlocked run with a sink configured:
            // dump the counterexample artifact. A dedup cache hit has no
            // RunCheck in hand, so recompute it — this happens at most
            // once per sweep and only on the failure path.
            if let Some(sink) = &options.artifacts {
                if artifact_record.is_none() && (deadlocked || verdict.is_some()) {
                    let check = match fresh_check.take() {
                        Some(c) => Some(c),
                        None => {
                            // Re-check under the `phase.check` timer: the
                            // restriction-level timers inside `evaluate`
                            // accumulate either way, so leaving this call
                            // unattributed would let the per-restriction
                            // breakdown exceed its parent phase.
                            let recheck_started = probing.then(Instant::now);
                            let c = evaluate(&program_comp).ok();
                            if let Some(t) = recheck_started {
                                let ns = elapsed_ns(t);
                                phased_ns += ns;
                                probe.time_ns("phase.check", ns);
                            }
                            c
                        }
                    };
                    if let Some(check) = check {
                        let run = runs - 1;
                        let written = forensics::write_run_artifact(
                            sink,
                            sys,
                            path,
                            run,
                            deadlocked,
                            &program_comp,
                            &check,
                            problem,
                        );
                        match written {
                            Ok(()) => {
                                probe.add("verify.artifacts.written", 1);
                                artifact_record = Some(ArtifactRecord {
                                    run,
                                    deadlock: deadlocked,
                                    failure: verdict.clone().map(|(violated, detail)| RunFailure {
                                        run,
                                        violated,
                                        detail,
                                    }),
                                });
                            }
                            Err(_) => probe.add("verify.artifacts.errors", 1),
                        }
                    }
                }
            }
            if let Some((violated, detail)) = verdict {
                if failures.is_empty() {
                    probe.gauge_set("verify.first_failure_run", (runs - 1) as u64);
                }
                probe.add("verify.failing_runs", 1);
                failures.push(RunFailure {
                    run: runs - 1,
                    violated,
                    detail,
                });
                if failures.len() >= options.max_failures {
                    return ControlFlow::Break(());
                }
            }
            ControlFlow::Continue(())
        });

    // Everything the sweep spent outside the timed stages is exploration:
    // schedule enumeration, state stepping, backtracking, sleep-set
    // bookkeeping.
    if let Some(started) = sweep_started {
        probe.time_ns(
            "phase.explore",
            elapsed_ns(started).saturating_sub(phased_ns),
        );
    }
    // One post-sweep flush so the counter is present (possibly zero) in
    // every report.
    probe.add("verify.deadlocks", deadlocks as u64);
    // Dedup counters are emitted only when the feature is on, so reports
    // from non-dedup sweeps are unchanged.
    if dedup {
        probe.add("verify.dedup.hits", dedup_hits);
        probe.add("verify.dedup.misses", dedup_misses);
    }

    if let Some(e) = project_error {
        return Err(e);
    }
    let outcome = VerifyOutcome {
        runs,
        deadlocks,
        failures,
        truncation: stats.truncation,
    };
    // `outcome.json` is written whenever a sink is configured — also for
    // clean sweeps, so a collector can tell "passed" from "crashed
    // before finishing".
    if let Some(sink) = &options.artifacts {
        match forensics::write_outcome(sink, &outcome, artifact_record.as_ref()) {
            Ok(()) => probe.add("verify.artifacts.written", 1),
            Err(_) => probe.add("verify.artifacts.errors", 1),
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::monitor::{
        MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt,
    };
    use gem_lang::Expr;
    use gem_logic::EventSel;
    use gem_spec::{prerequisite, ElementType, SpecBuilder};

    /// Problem: a "ticket" protocol — every Done is preceded by exactly
    /// one Begin that enables it.
    fn ticket_problem() -> Specification {
        let ctl = ElementType::new("Ctl")
            .event("TBegin", &[])
            .event("TDone", &[]);
        let mut sb = SpecBuilder::new("Ticket");
        let c = sb.instantiate_element(&ctl, "ctl").unwrap();
        sb.add_restriction(
            "begin-then-done",
            prerequisite(&c.sel("TBegin"), &c.sel("TDone")),
        );
        sb.finish()
    }

    fn counter_system(entries_per_proc: usize) -> MonitorSystem {
        let monitor = MonitorDef::new("Counter").var("count", 0i64).entry(
            "Inc",
            &[],
            vec![Stmt::assign("count", Expr::var("count").add(Expr::int(1)))],
        );
        let mut prog = MonitorProgram::new(monitor);
        for i in 0..2 {
            prog = prog.process(ProcessDef::new(
                format!("p{i}"),
                vec![
                    ScriptStep::Call {
                        entry: "Inc".into(),
                        args: vec![]
                    };
                    entries_per_proc
                ],
            ));
        }
        MonitorSystem::new(prog)
    }

    #[test]
    fn monitor_satisfies_ticket_protocol() {
        let sys = counter_system(1);
        let problem = ticket_problem();
        let ps = problem.structure();
        let ctl = ps.element("ctl").unwrap();
        let tb = ps.class("TBegin").unwrap();
        let td = ps.class("TDone").unwrap();
        // Significant objects: entry Begin ↦ TBegin, entry End ↦ TDone.
        let corr = Correspondence::new()
            .map(
                EventSel::of_class(sys.class("Begin")).at(sys.entry_element("Inc")),
                ctl,
                tb,
            )
            .map(
                EventSel::of_class(sys.class("End")).at(sys.entry_element("Inc")),
                ctl,
                td,
            );
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |state| sys.computation(state).unwrap(),
            &VerifyOptions::default(),
        )
        .unwrap();
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
        assert!(outcome.runs >= 2);
    }

    #[test]
    fn wrong_correspondence_fails_sat() {
        // Mapping Begin ↦ TDone breaks the prerequisite: a TDone with no
        // TBegin enabling it.
        let sys = counter_system(1);
        let problem = ticket_problem();
        let ps = problem.structure();
        let ctl = ps.element("ctl").unwrap();
        let td = ps.class("TDone").unwrap();
        let corr = Correspondence::new().map(
            EventSel::of_class(sys.class("Begin")).at(sys.entry_element("Inc")),
            ctl,
            td,
        );
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |state| sys.computation(state).unwrap(),
            &VerifyOptions::default(),
        )
        .unwrap();
        assert!(!outcome.ok());
        assert!(outcome.failures[0]
            .violated
            .contains(&"begin-then-done".to_owned()));
        assert!(outcome.to_string().contains("failing"));
    }

    #[test]
    fn failing_sweep_writes_artifact_dir() {
        let sys = counter_system(1);
        let problem = ticket_problem();
        let ps = problem.structure();
        let ctl = ps.element("ctl").unwrap();
        let td = ps.class("TDone").unwrap();
        let corr = Correspondence::new().map(
            EventSel::of_class(sys.class("Begin")).at(sys.entry_element("Inc")),
            ctl,
            td,
        );
        let dir =
            std::env::temp_dir().join(format!("gem-sat-artifact-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |state| sys.computation(state).unwrap(),
            &VerifyOptions {
                artifacts: Some(ArtifactSink::new(&dir).meta("problem", "ticket")),
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.ok());
        for name in [
            "meta.json",
            "schedule.json",
            "computation.json",
            "blame.json",
            "counterexample.dot",
            "counterexample_slice.dot",
            "outcome.json",
        ] {
            assert!(dir.join(name).exists(), "missing artifact file {name}");
        }
        // Every JSON artifact must parse, and the outcome record must
        // carry the replay expectation for the captured run.
        for name in [
            "meta.json",
            "schedule.json",
            "computation.json",
            "blame.json",
        ] {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            gem_obs::json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let text = std::fs::read_to_string(dir.join("outcome.json")).unwrap();
        let parsed = gem_obs::json::parse(&text).unwrap();
        let replay = parsed.get("replay").expect("replay section");
        assert_eq!(replay.get("runs").and_then(|v| v.as_u64()), Some(1));
        assert!(parsed.get("artifact").and_then(|a| a.get("run")).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_cap_respected() {
        let sys = counter_system(2);
        let problem = ticket_problem();
        let ps = problem.structure();
        let ctl = ps.element("ctl").unwrap();
        let td = ps.class("TDone").unwrap();
        let corr = Correspondence::new().map(
            EventSel::of_class(sys.class("Begin")).at(sys.entry_element("Inc")),
            ctl,
            td,
        );
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |state| sys.computation(state).unwrap(),
            &VerifyOptions {
                max_failures: 1,
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.failures.len(), 1);
    }
}
