//! # gem-verify — the GEM verification methodology (§9)
//!
//! Machine-checked `PROG sat P`: choose the **significant objects** of a
//! program specification via a [`Correspondence`], [`project`] each of
//! the program's computations onto them, and check every restriction of
//! the problem specification — over *all* schedules of the program, via
//! [`verify_system`]. Deadlock-freedom and liveness sweeps live in the
//! progress module ([`assert_no_deadlock`], [`eventually_on_all_runs`]).
//!
//! This replaces the paper's hand proofs with exhaustive bounded
//! verification (see DESIGN.md, "Substitutions"): the judgement is the
//! same — the monitor of §9 *does* give readers priority — but the
//! evidence is a sweep over every schedule of a bounded instance rather
//! than a manual argument.
//!
//! ## Example
//!
//! ```
//! use gem_lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
//! use gem_lang::Expr;
//! use gem_logic::EventSel;
//! use gem_spec::{prerequisite, ElementType, SpecBuilder};
//! use gem_verify::{verify_system, Correspondence, VerifyOptions};
//!
//! // Problem: every Done is enabled by exactly one Begin.
//! let ticket = ElementType::new("Ctl").event("TBegin", &[]).event("TDone", &[]);
//! let mut sb = SpecBuilder::new("Ticket");
//! let ctl = sb.instantiate_element(&ticket, "ctl").unwrap();
//! sb.add_restriction("begin-then-done", prerequisite(&ctl.sel("TBegin"), &ctl.sel("TDone")));
//! let problem = sb.finish();
//!
//! // Program: a trivial monitor entry called by two processes.
//! let monitor = MonitorDef::new("M").var("x", 0i64).entry(
//!     "Inc", &[], vec![Stmt::assign("x", Expr::var("x").add(Expr::int(1)))]);
//! let mut prog = MonitorProgram::new(monitor);
//! for i in 0..2 {
//!     prog = prog.process(ProcessDef::new(format!("p{i}"), vec![ScriptStep::Call {
//!         entry: "Inc".into(), args: vec![] }]));
//! }
//! let sys = MonitorSystem::new(prog);
//!
//! // Significant objects: entry Begin ↦ TBegin, entry End ↦ TDone.
//! let ps = problem.structure();
//! let corr = Correspondence::new()
//!     .map(EventSel::of_class(sys.class("Begin")), ps.element("ctl").unwrap(),
//!          ps.class("TBegin").unwrap())
//!     .map(EventSel::of_class(sys.class("End")), ps.element("ctl").unwrap(),
//!          ps.class("TDone").unwrap());
//!
//! let outcome = verify_system(&sys, &problem, &corr,
//!     |s| sys.computation(s).unwrap(), &VerifyOptions::default()).unwrap();
//! assert!(outcome.ok() && outcome.exhaustive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto;
mod correspondence;
pub mod dedup;
pub mod forensics;
pub mod incr;
mod progress;
mod sat;

pub use auto::{sample_evidence, StrategyDecision, StrategyEvidence};
pub use correspondence::{project, Correspondence, Pair, ProjectError};
pub use dedup::{canonical_key, confirm_key, CanonicalKey};
pub use forensics::{computation_json, derive_schedule, outcome_path, ArtifactSink};
pub use incr::{IncrCheck, IncrChecker, LeafStatus};
pub use progress::{assert_no_deadlock, eventually_on_all_runs, LivenessOutcome};
pub use sat::{
    check_computation, verify_system, RunCheck, RunFailure, VerifyOptions, VerifyOutcome,
};
