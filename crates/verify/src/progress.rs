//! Progress and deadlock checking (§9, footnote 9).
//!
//! The paper's *weak progress* requirement: if all prerequisites of an
//! event are fulfilled and remain fulfilled, the event must eventually
//! occur. For a system explored to termination this reduces to two
//! checks:
//!
//! * **No deadlock** — every maximal run reaches a complete terminal
//!   state ([`assert_no_deadlock`] / re-exported
//!   [`find_deadlock`](gem_lang::find_deadlock)).
//! * **Eventual occurrence** — on every run, the events a liveness claim
//!   names do occur ([`eventually_on_all_runs`]): the `◇`-check of a
//!   formula over each run's computation.

use std::collections::HashMap;
use std::ops::ControlFlow;

use gem_core::Computation;
use gem_lang::{Explorer, System, TruncationReason};
use gem_logic::{check, Formula, Strategy};

use crate::dedup::{canonical_key, CanonicalKey};

/// Result of a liveness sweep over all runs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LivenessOutcome {
    /// Runs explored.
    pub runs: usize,
    /// Runs on which the formula failed.
    pub failing_runs: Vec<usize>,
    /// Why exploration stopped short, or `None` if it was exhaustive.
    pub truncation: Option<TruncationReason>,
}

impl LivenessOutcome {
    /// True if the formula held on every explored run.
    pub fn ok(&self) -> bool {
        self.failing_runs.is_empty()
    }

    /// True if some bound truncated the sweep.
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }
}

/// Checks a (typically `◇…`) formula against every run's computation
/// under the given strategy. Runs are enumerated with
/// [`Explorer::par_for_each_run`], so `explorer.jobs > 1` parallelises
/// the sweep without changing the reported run indices.
///
/// With [`Explorer::dedup_computations`] set, trace-equivalent runs are
/// checked once and the verdict replayed (see [`crate::dedup`]); the
/// outcome is unchanged, and hits/misses are reported on the ambient
/// probe as `progress.dedup.hits` / `progress.dedup.misses`.
pub fn eventually_on_all_runs<S>(
    sys: &S,
    formula: &Formula,
    extract: impl Fn(&S::State) -> Computation,
    explorer: &Explorer,
    strategy: Strategy,
) -> LivenessOutcome
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut runs = 0usize;
    let mut failing_runs = Vec::new();
    let dedup = explorer.dedup_computations;
    let mut verdicts: HashMap<CanonicalKey, bool> = HashMap::new();
    let (mut dedup_hits, mut dedup_misses) = (0u64, 0u64);
    let stats = explorer.par_for_each_run(sys, |state, _| {
        let c = extract(state);
        let key = dedup.then(|| canonical_key(&c));
        let holds = match key.as_ref().and_then(|k| verdicts.get(k)) {
            Some(&cached) => {
                dedup_hits += 1;
                cached
            }
            None => {
                if dedup {
                    dedup_misses += 1;
                }
                let fresh = matches!(check(formula, &c, strategy), Ok(report) if report.holds);
                if let Some(k) = key {
                    verdicts.insert(k, fresh);
                }
                fresh
            }
        };
        if !holds {
            gem_obs::ambient::add("progress.failing_runs", 1);
            failing_runs.push(runs);
        }
        runs += 1;
        ControlFlow::Continue(())
    });
    gem_obs::ambient::add("progress.liveness_sweeps", 1);
    if dedup {
        gem_obs::ambient::add("progress.dedup.hits", dedup_hits);
        gem_obs::ambient::add("progress.dedup.misses", dedup_misses);
    }
    LivenessOutcome {
        runs,
        failing_runs,
        truncation: stats.truncation,
    }
}

/// Asserts the system is deadlock-free within the explorer's bounds.
///
/// Returns `Ok(runs_explored)` or the action trace of the first deadlock
/// rendered with `Debug`. The witness is the first deadlock in serial
/// DFS order regardless of `explorer.jobs`.
///
/// Deadlock is a property of the terminal *state* (incomplete with no
/// enabled action), not of the sealed computation, so this sweep ignores
/// [`Explorer::dedup_computations`] — there is no computation-level check
/// to deduplicate.
pub fn assert_no_deadlock<S>(sys: &S, explorer: &Explorer) -> Result<usize, String>
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut runs = 0usize;
    let mut witness: Option<String> = None;
    explorer.par_for_each_run(sys, |state, path| {
        runs += 1;
        if sys.is_complete(state) {
            ControlFlow::Continue(())
        } else {
            witness = Some(format!("{path:?}"));
            ControlFlow::Break(())
        }
    });
    match witness {
        Some(w) => Err(w),
        None => Ok(runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::csp::{CspProcess, CspProgram, CspStmt, CspSystem};
    use gem_lang::Expr;
    use gem_logic::EventSel;

    fn ping() -> CspSystem {
        CspSystem::new(
            CspProgram::new()
                .process(CspProcess::new("a", vec![CspStmt::send("b", Expr::int(1))]))
                .process(CspProcess::new("b", vec![CspStmt::recv("a", "x")]).local("x", 0i64)),
        )
    }

    #[test]
    fn no_deadlock_on_matching_pair() {
        let sys = ping();
        assert_eq!(assert_no_deadlock(&sys, &Explorer::default()), Ok(1));
    }

    #[test]
    fn deadlock_reported_with_trace() {
        let sys = CspSystem::new(
            CspProgram::new()
                .process(CspProcess::new("a", vec![CspStmt::recv("b", "x")]).local("x", 0i64))
                .process(CspProcess::new("b", vec![CspStmt::recv("a", "y")]).local("y", 0i64)),
        );
        let err = assert_no_deadlock(&sys, &Explorer::default()).unwrap_err();
        assert!(err.starts_with('['), "action trace rendered: {err}");
    }

    #[test]
    fn eventual_exchange_holds() {
        let sys = ping();
        let f = Formula::exists(
            "e",
            EventSel::of_class(sys.class("InEnd")),
            Formula::occurred("e"),
        )
        .eventually();
        let outcome = eventually_on_all_runs(
            &sys,
            &f,
            |s| sys.computation(s).unwrap(),
            &Explorer::default(),
            Strategy::Linearizations { limit: 1000 },
        );
        assert!(outcome.ok());
        assert_eq!(outcome.runs, 1);
    }

    #[test]
    fn liveness_outcome_reports_truncation() {
        // A larger pipeline with a tight run budget: the sweep still
        // passes but flags truncation.
        let mut prog = CspProgram::new();
        let mut a_body = Vec::new();
        let mut b_body = Vec::new();
        for _ in 0..3 {
            a_body.push(CspStmt::send("b", Expr::int(1)));
            b_body.push(CspStmt::recv("a", "x"));
        }
        prog = prog
            .process(CspProcess::new("a", a_body))
            .process(CspProcess::new("b", b_body).local("x", 0i64));
        // Add an independent pair so there is more than one schedule.
        prog = prog
            .process(CspProcess::new("c", vec![CspStmt::send("d", Expr::int(2))]))
            .process(CspProcess::new("d", vec![CspStmt::recv("c", "y")]).local("y", 0i64));
        let sys = CspSystem::new(prog);
        let f = Formula::exists(
            "e",
            EventSel::of_class(sys.class("InEnd")),
            Formula::occurred("e"),
        )
        .eventually();
        let outcome = eventually_on_all_runs(
            &sys,
            &f,
            |s| sys.computation(s).unwrap(),
            &Explorer::with_max_runs(2),
            Strategy::GreedySteps,
        );
        assert!(outcome.ok());
        assert_eq!(outcome.truncation, Some(TruncationReason::RunLimit));
        assert_eq!(outcome.runs, 2);
    }

    #[test]
    fn impossible_liveness_fails() {
        let sys = ping();
        // Claim: eventually two InEnd events occur — false, only one
        // exchange happens.
        let f = Formula::exists(
            "e",
            EventSel::of_class(sys.class("InEnd")),
            Formula::exists(
                "e2",
                EventSel::of_class(sys.class("InEnd")),
                Formula::event_eq("e", "e2")
                    .not()
                    .and(Formula::occurred("e"))
                    .and(Formula::occurred("e2")),
            ),
        )
        .eventually();
        let outcome = eventually_on_all_runs(
            &sys,
            &f,
            |s| sys.computation(s).unwrap(),
            &Explorer::default(),
            Strategy::Linearizations { limit: 1000 },
        );
        assert!(!outcome.ok());
    }
}
