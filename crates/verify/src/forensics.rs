//! Counterexample artifacts: self-contained failure directories.
//!
//! When [`verify_system`](crate::verify_system) hits its first failing or
//! deadlocked run with an [`ArtifactSink`] configured, it emits a
//! directory a human (or `gem replay`) can consume with no access to the
//! original process:
//!
//! * `meta.json` — instance identity (problem, params, options) supplied
//!   by the caller, plus which run the artifact captures.
//! * `schedule.json` — the run's schedule as indices into each state's
//!   `enabled()` list (plus the action's `Debug` text for validation),
//!   the only faithful serialization available for arbitrary
//!   [`System::Action`](gem_lang::System::Action) types.
//! * `computation.json` — the sealed program computation: events with
//!   element/class/seq/params/threads, and the enable relation.
//! * `blame.json` — per-restriction falsification paths from
//!   [`gem_spec::Specification::blame_failures`], or the deadlock marker.
//! * `counterexample.dot` / `counterexample_slice.dot` — the projected
//!   computation with blamed events highlighted; the slice view restricts
//!   to their past cone (the smallest history containing the blamed
//!   events — a prefix of the violating valid history sequence).
//! * `outcome.json` — the sweep outcome, the artifact run's coordinates,
//!   and the single-run outcome `gem replay` must reproduce.
//!
//! All files are written atomically ([`gem_obs::write_atomic`]), so a
//! watcher or CI collector never sees a half-written artifact.

use std::path::{Path, PathBuf};

use gem_core::{to_dot_with, Computation, DotOptions};
use gem_lang::System;
use gem_logic::Blame;
use gem_obs::json::{push_json_key, push_json_str};

use crate::sat::{RunCheck, RunFailure, VerifyOutcome};

/// Where and with what context counterexample artifacts are emitted.
#[derive(Clone, Debug)]
pub struct ArtifactSink {
    /// Directory to write into; created (with parents) on first use.
    pub dir: PathBuf,
    /// Context recorded in `meta.json` — whatever the caller needs to
    /// rebuild the instance (problem name, params, strategy). Order is
    /// preserved.
    pub meta: Vec<(String, String)>,
}

impl ArtifactSink {
    /// A sink writing into `dir` with no meta context yet.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            meta: Vec::new(),
        }
    }

    /// Adds one `meta.json` entry.
    #[must_use]
    pub fn meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }
}

/// What the sweep captured an artifact for; embedded in `outcome.json`
/// and used to build the replay-expectation record.
#[derive(Clone, Debug)]
pub(crate) struct ArtifactRecord {
    pub run: usize,
    pub deadlock: bool,
    pub failure: Option<RunFailure>,
}

/// Derives the schedule of `path` as indices into each intermediate
/// state's `enabled()` list, pairing each index with the action's
/// `Debug` rendering for validation. Returns `None` if some action is
/// not found among the enabled ones (which would mean the path is not a
/// schedule of `sys`).
pub fn derive_schedule<S: System>(sys: &S, path: &[S::Action]) -> Option<Vec<(usize, String)>> {
    let mut state = sys.initial();
    let mut out = Vec::with_capacity(path.len());
    for action in path {
        let wanted = format!("{action:?}");
        let enabled = sys.enabled(&state);
        let index = enabled.iter().position(|a| format!("{a:?}") == wanted)?;
        out.push((index, wanted));
        sys.apply(&mut state, action);
    }
    Some(out)
}

fn write(sink: &ArtifactSink, name: &str, contents: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(&sink.dir)?;
    gem_obs::write_atomic(&sink.dir.join(name), contents)
}

pub(crate) fn meta_json(sink: &ArtifactSink, run: usize, deadlock: bool) -> String {
    let mut out = String::from("{\n");
    push_kv(
        &mut out,
        "kind",
        if deadlock { "deadlock" } else { "failure" },
    );
    out.push_str(",\n");
    out.push_str("  ");
    push_json_key(&mut out, "run");
    out.push_str(&format!(" {run}"));
    for (k, v) in &sink.meta {
        out.push_str(",\n");
        push_kv(&mut out, k, v);
    }
    out.push_str("\n}\n");
    out
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    out.push_str("  ");
    push_json_key(out, key);
    out.push(' ');
    push_json_str(out, value);
}

pub(crate) fn schedule_json(run: usize, schedule: &[(usize, String)]) -> String {
    let mut out = String::from("{\n  ");
    push_json_key(&mut out, "run");
    out.push_str(&format!(" {run},\n  "));
    push_json_key(&mut out, "steps");
    out.push_str(" [");
    for (i, (index, action)) in schedule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        push_json_key(&mut out, "index");
        out.push_str(&format!(" {index}, "));
        push_json_key(&mut out, "action");
        out.push(' ');
        push_json_str(&mut out, action);
        out.push('}');
    }
    if !schedule.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Serializes a sealed computation: every event with resolved names,
/// plus the enable relation. Self-contained — readable without the
/// generating structure.
pub fn computation_json(comp: &Computation) -> String {
    let s = comp.structure();
    let mut out = String::from("{\n  ");
    push_json_key(&mut out, "event_count");
    out.push_str(&format!(" {},\n  ", comp.event_count()));
    push_json_key(&mut out, "events");
    out.push_str(" [");
    for (i, ev) in comp.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        push_json_key(&mut out, "id");
        out.push_str(&format!(" {}, ", ev.id().index()));
        push_json_key(&mut out, "element");
        out.push(' ');
        push_json_str(&mut out, s.element_info(ev.element()).name());
        out.push_str(", ");
        push_json_key(&mut out, "class");
        out.push(' ');
        push_json_str(&mut out, s.class_info(ev.class()).name());
        out.push_str(", ");
        push_json_key(&mut out, "seq");
        out.push_str(&format!(" {}, ", ev.seq()));
        push_json_key(&mut out, "params");
        out.push_str(" [");
        for (j, p) in ev.params().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, &p.to_string());
        }
        out.push_str("], ");
        push_json_key(&mut out, "threads");
        out.push_str(" [");
        for (j, t) in ev.threads().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, &t.to_string());
        }
        out.push_str("]}");
    }
    if comp.event_count() > 0 {
        out.push_str("\n  ");
    }
    out.push_str("],\n  ");
    push_json_key(&mut out, "enables");
    out.push_str(" [");
    let mut first = true;
    for (a, b) in comp.enable_edges() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("[{}, {}]", a.index(), b.index()));
    }
    out.push_str("]\n}\n");
    out
}

pub(crate) fn blame_json(blames: &[(String, Blame)], deadlock: bool, comp: &Computation) -> String {
    let mut out = String::from("{\n  ");
    push_json_key(&mut out, "deadlock");
    out.push_str(&format!(" {deadlock},\n  "));
    push_json_key(&mut out, "restrictions");
    out.push_str(" [");
    for (i, (name, blame)) in blames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        push_json_key(&mut out, "name");
        out.push(' ');
        push_json_str(&mut out, name);
        out.push_str(", ");
        push_json_key(&mut out, "frames");
        out.push_str(" [");
        for (j, frame) in blame.frames.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n      {");
            push_json_key(&mut out, "kind");
            out.push(' ');
            push_json_str(&mut out, frame.kind);
            out.push_str(", ");
            push_json_key(&mut out, "expect");
            out.push_str(&format!(" {}, ", frame.expect));
            push_json_key(&mut out, "node");
            out.push(' ');
            push_json_str(&mut out, &frame.node);
            out.push_str(", ");
            push_json_key(&mut out, "note");
            out.push(' ');
            push_json_str(&mut out, &frame.note);
            out.push_str(", ");
            push_json_key(&mut out, "witnesses");
            out.push_str(" [");
            for (k, (var, event)) in frame.witnesses.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push('{');
                push_json_key(&mut out, "var");
                out.push(' ');
                push_json_str(&mut out, var);
                out.push_str(", ");
                push_json_key(&mut out, "event");
                out.push_str(&format!(" {}, ", event.index()));
                push_json_key(&mut out, "label");
                out.push(' ');
                push_json_str(&mut out, &comp.event_label(*event));
                out.push('}');
            }
            out.push_str("]}");
        }
        if !blame.frames.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]}");
    }
    if !blames.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn failures_json(out: &mut String, failures: &[RunFailure], indent: &str) {
    out.push('[');
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n{indent}  {{"));
        push_json_key(out, "run");
        out.push_str(&format!(" {}, ", f.run));
        push_json_key(out, "violated");
        out.push_str(" [");
        for (j, v) in f.violated.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_str(out, v);
        }
        out.push_str("], ");
        push_json_key(out, "detail");
        out.push(' ');
        push_json_str(out, &f.detail);
        out.push('}');
    }
    if !failures.is_empty() {
        out.push_str(&format!("\n{indent}"));
    }
    out.push(']');
}

fn outcome_fields(out: &mut String, outcome: &VerifyOutcome, indent: &str) {
    out.push('{');
    out.push_str(&format!("\n{indent}  "));
    push_json_key(out, "runs");
    out.push_str(&format!(" {},\n{indent}  ", outcome.runs));
    push_json_key(out, "deadlocks");
    out.push_str(&format!(" {},\n{indent}  ", outcome.deadlocks));
    push_json_key(out, "failures");
    out.push(' ');
    failures_json(out, &outcome.failures, &format!("{indent}  "));
    out.push_str(&format!(",\n{indent}  "));
    push_json_key(out, "truncation");
    match outcome.truncation {
        Some(reason) => {
            out.push(' ');
            push_json_str(out, &reason.to_string());
        }
        None => out.push_str(" null"),
    }
    out.push_str(&format!("\n{indent}}}"));
}

pub(crate) fn outcome_json(outcome: &VerifyOutcome, artifact: Option<&ArtifactRecord>) -> String {
    let mut out = String::from("{\n  ");
    push_json_key(&mut out, "outcome");
    out.push(' ');
    outcome_fields(&mut out, outcome, "  ");
    out.push_str(",\n  ");
    push_json_key(&mut out, "artifact");
    match artifact {
        None => out.push_str(" null"),
        Some(rec) => {
            out.push_str(" {");
            push_json_key(&mut out, "run");
            out.push_str(&format!(" {}, ", rec.run));
            push_json_key(&mut out, "deadlock");
            out.push_str(&format!(" {}}}", rec.deadlock));
        }
    }
    out.push_str(",\n  ");
    push_json_key(&mut out, "replay");
    match artifact {
        None => out.push_str(" null"),
        Some(rec) => {
            // The single-run outcome `gem replay` must reproduce from the
            // recorded schedule alone: one run, so the failure index is 0.
            let expected = VerifyOutcome {
                runs: 1,
                deadlocks: usize::from(rec.deadlock),
                failures: rec
                    .failure
                    .clone()
                    .map(|mut f| {
                        f.run = 0;
                        f
                    })
                    .into_iter()
                    .collect(),
                truncation: None,
            };
            out.push(' ');
            outcome_fields(&mut out, &expected, "  ");
        }
    }
    out.push_str("\n}\n");
    out
}

/// Writes the per-run artifact files (everything except `outcome.json`,
/// which needs the completed sweep).
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_run_artifact<S: System>(
    sink: &ArtifactSink,
    sys: &S,
    path: &[S::Action],
    run: usize,
    deadlock: bool,
    program_comp: &Computation,
    check: &RunCheck,
    problem: &gem_spec::Specification,
) -> std::io::Result<()> {
    write(sink, "meta.json", &meta_json(sink, run, deadlock))?;
    match derive_schedule(sys, path) {
        Some(schedule) => write(sink, "schedule.json", &schedule_json(run, &schedule))?,
        None => {
            // Cannot happen for a path produced by the explorer; record
            // the fact rather than silently omitting the file.
            write(
                sink,
                "schedule.json",
                "{\"error\": \"path is not a schedule of this system\"}\n",
            )?;
        }
    }
    write(sink, "computation.json", &computation_json(program_comp))?;
    let blames = match &check.spec_report {
        Some(report) => problem.blame_failures(&check.projected, report),
        None => Vec::new(),
    };
    write(
        sink,
        "blame.json",
        &blame_json(&blames, deadlock, &check.projected),
    )?;
    // Highlight the blamed witnesses on the projected computation; for a
    // deadlock with no restriction failure, highlight the stuck frontier
    // (maximal events) of the program computation instead.
    let (dot_comp, highlight) = if blames.is_empty() && deadlock {
        (program_comp, program_comp.maximal_events())
    } else {
        let mut hl = Vec::new();
        for (_, blame) in &blames {
            for e in blame.witness_events() {
                if !hl.contains(&e) {
                    hl.push(e);
                }
            }
        }
        (&check.projected, hl)
    };
    write(
        sink,
        "counterexample.dot",
        &to_dot_with(
            dot_comp,
            &DotOptions {
                highlight: highlight.clone(),
                slice: false,
            },
        ),
    )?;
    write(
        sink,
        "counterexample_slice.dot",
        &to_dot_with(
            dot_comp,
            &DotOptions {
                highlight,
                slice: true,
            },
        ),
    )?;
    Ok(())
}

pub(crate) fn write_outcome(
    sink: &ArtifactSink,
    outcome: &VerifyOutcome,
    artifact: Option<&ArtifactRecord>,
) -> std::io::Result<()> {
    write(sink, "outcome.json", &outcome_json(outcome, artifact))
}

/// Convenience for tests and the CLI: the artifact directory's
/// `outcome.json` path.
pub fn outcome_path(dir: &Path) -> PathBuf {
    dir.join("outcome.json")
}
