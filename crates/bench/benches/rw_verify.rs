//! E1–E3, E6 — Readers/Writers verification benches: the cost of the
//! machine-checked counterparts of the paper's §9 claims.
//!
//! Series reported (§9 monitor unless noted):
//! * `mutex_with_data_1r1w` — E2: mutual exclusion with shared data.
//! * `readers_priority_1r2w` — E3: the §9 readers-priority proof.
//! * `writers_priority_monitor_2r1w` — E6: the writers-priority monitor
//!   against its own spec.
//! * `entries_sequential_2r1w` — E1: total ordering of monitor events.
//! * `*_dedup` — F6: the same sweeps with
//!   `Explorer::dedup_computations`, checking each distinct computation
//!   once (identical outcome, see `docs/PERFORMANCE.md`).
//! * `*_por` / `*_por_dedup` — F7: sleep-set partial-order reduction
//!   (`Explorer::reduce`), exploring roughly one schedule per
//!   computation — alone and combined with dedup. Control-only
//!   instances (no shared-data steps) admit no reduction and serve as
//!   the no-op baseline.
//! * `*_auto` — the `--auto` strategy picker: sample, choose, sweep
//!   with the chosen flags. The one-off sampling decision runs outside
//!   the measured loop (it is deterministic per instance and amortised
//!   over a sweep); the series must land within 10% of the best
//!   hand-picked mode above.
//! * `*_incr` — F8: incremental restriction checking pinned on
//!   (`IncrCheck::On`). The unsuffixed series run the default
//!   (`IncrCheck::Auto`), which already takes the incremental path on
//!   these specs, so `_incr` vs plain isolates the mode-pinning delta
//!   (expected ≈0) while plain vs the `before`/`after` trajectory in
//!   `BENCH_verify.json` captures the F8 win itself.

use criterion::{criterion_group, criterion_main, Criterion};
use gem_lang::monitor::{entries_sequential, readers_writers_monitor};
use gem_lang::Explorer;
use gem_problems::readers_writers::{
    rw_correspondence, rw_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem_verify::auto::{self, Strategy};
use gem_verify::{check_computation, sample_evidence, verify_system, IncrCheck, VerifyOptions};
use std::ops::ControlFlow;

#[allow(clippy::too_many_arguments)] // bench table row, not an API
fn verify_bench(
    c: &mut Criterion,
    name: &str,
    monitor: gem_lang::monitor::MonitorDef,
    readers: usize,
    writers: usize,
    with_data: bool,
    variant: RwVariant,
    dedup: bool,
    reduce: bool,
    incr: IncrCheck,
) {
    let sys = rw_program(monitor, readers, writers, with_data);
    let problem = rw_spec(readers + writers, with_data, variant);
    let corr = rw_correspondence(&sys, &problem, with_data);
    let options = VerifyOptions {
        explorer: Explorer {
            dedup_computations: dedup,
            reduce,
            ..Explorer::default()
        },
        incr_check: incr,
        ..VerifyOptions::default()
    };
    c.bench_function(name, |b| {
        b.iter(|| {
            let outcome = verify_system(
                &sys,
                &problem,
                &corr,
                |s| sys.computation(s).expect("acyclic"),
                &options,
            )
            .expect("consistent");
            assert!(outcome.ok(), "{outcome}");
            outcome.runs
        });
    });
}

/// The `*_auto` series: let the strategy picker sample the instance and
/// choose, then sweep under the chosen flags.
fn verify_bench_auto(
    c: &mut Criterion,
    name: &str,
    monitor: gem_lang::monitor::MonitorDef,
    readers: usize,
    writers: usize,
    with_data: bool,
    variant: RwVariant,
) {
    let sys = rw_program(monitor, readers, writers, with_data);
    let problem = rw_spec(readers + writers, with_data, variant);
    let corr = rw_correspondence(&sys, &problem, with_data);
    let defaults = VerifyOptions::default();
    let evidence = sample_evidence(
        &defaults.explorer,
        &sys,
        |s| sys.computation(s).expect("acyclic"),
        |comp| {
            let _ = check_computation(
                comp,
                &problem,
                &corr,
                defaults.strategy,
                defaults.check_program_legality,
            );
        },
        auto::AUTO_SAMPLES,
        auto::AUTO_CHECKS,
    );
    let decision = auto::choose(evidence);
    let options = VerifyOptions {
        explorer: Explorer {
            dedup_computations: decision.strategy == Strategy::Dedup,
            reduce: decision.strategy == Strategy::Por,
            ..Explorer::default()
        },
        ..VerifyOptions::default()
    };
    c.bench_function(name, |b| {
        b.iter(|| {
            let outcome = verify_system(
                &sys,
                &problem,
                &corr,
                |s| sys.computation(s).expect("acyclic"),
                &options,
            )
            .expect("consistent");
            assert!(outcome.ok(), "{outcome}");
            outcome.runs
        });
    });
}

fn bench_rw(c: &mut Criterion) {
    // (suffix, dedup, reduce): the plain sweep, F6 dedup, F7 sleep-set
    // POR, and the two combined.
    const MODES: [(&str, bool, bool, IncrCheck); 5] = [
        ("", false, false, IncrCheck::Auto),
        ("_dedup", true, false, IncrCheck::Auto),
        ("_por", false, true, IncrCheck::Auto),
        ("_por_dedup", true, true, IncrCheck::Auto),
        ("_incr", false, false, IncrCheck::On),
    ];
    for (suffix, dedup, reduce, incr) in MODES {
        verify_bench(
            c,
            &format!("rw_verify/mutex_with_data_1r1w{suffix}"),
            readers_writers_monitor(),
            1,
            1,
            true,
            RwVariant::MutexOnly,
            dedup,
            reduce,
            incr,
        );
        verify_bench(
            c,
            &format!("rw_verify/readers_priority_1r2w{suffix}"),
            readers_writers_monitor(),
            1,
            2,
            false,
            RwVariant::ReadersPriority,
            dedup,
            reduce,
            incr,
        );
        verify_bench(
            c,
            &format!("rw_verify/writers_priority_monitor_2r1w{suffix}"),
            writers_priority_monitor(),
            2,
            1,
            false,
            RwVariant::WritersPriority,
            dedup,
            reduce,
            incr,
        );
    }
    // The strategy picker on the two instances where hand-picked flags
    // disagree most: mutex_with_data (POR is a ~100× win) and
    // readers_priority (every reduction is a regression; plain wins).
    verify_bench_auto(
        c,
        "rw_verify/mutex_with_data_1r1w_auto",
        readers_writers_monitor(),
        1,
        1,
        true,
        RwVariant::MutexOnly,
    );
    verify_bench_auto(
        c,
        "rw_verify/readers_priority_1r2w_auto",
        readers_writers_monitor(),
        1,
        2,
        false,
        RwVariant::ReadersPriority,
    );
    // E1: sequential execution of monitor entries, over all schedules.
    let sys = rw_program(readers_writers_monitor(), 2, 1, false);
    c.bench_function("rw_verify/entries_sequential_2r1w", |b| {
        b.iter(|| {
            let mut ok = true;
            Explorer::default().for_each_run(&sys, |state, _| {
                let comp = sys.computation(state).expect("acyclic");
                ok &= entries_sequential(&sys, &comp);
                ControlFlow::Continue(())
            });
            assert!(ok);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_rw
}
criterion_main!(benches);
