//! E4–E5 — buffer verification benches: One-Slot and Bounded Buffer,
//! each on all three language substrates (Monitor, CSP, ADA).

use criterion::{criterion_group, criterion_main, Criterion};
use gem_problems::{bounded, one_slot};
use gem_verify::{verify_system, VerifyOptions};

const ITEMS: &[i64] = &[10, 20, 30];
const BITEMS: &[i64] = &[1, 2, 3, 4];
const CAP: usize = 2;

fn bench_buffers(c: &mut Criterion) {
    // E4: One-Slot Buffer.
    {
        let problem = one_slot::one_slot_spec();
        let sys = one_slot::monitor_solution(ITEMS);
        let corr = one_slot::monitor_correspondence(&sys, &problem);
        c.bench_function("buffer_verify/one_slot_monitor", |b| {
            b.iter(|| {
                verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).unwrap(),
                    &VerifyOptions::default(),
                )
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
            });
        });
        let sys = one_slot::csp_solution(ITEMS);
        let corr = one_slot::csp_correspondence(&sys, &problem);
        c.bench_function("buffer_verify/one_slot_csp", |b| {
            b.iter(|| {
                verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).unwrap(),
                    &VerifyOptions::default(),
                )
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
            });
        });
        let sys = one_slot::ada_solution(ITEMS);
        let corr = one_slot::ada_correspondence(&sys, &problem);
        c.bench_function("buffer_verify/one_slot_ada", |b| {
            b.iter(|| {
                verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).unwrap(),
                    &VerifyOptions::default(),
                )
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
            });
        });
    }
    // E5: Bounded Buffer, capacity 2.
    {
        let problem = bounded::bounded_spec(BITEMS.len(), CAP);
        let sys = bounded::monitor_solution(BITEMS, CAP);
        let corr = bounded::monitor_correspondence(&sys, &problem, CAP);
        c.bench_function("buffer_verify/bounded_monitor", |b| {
            b.iter(|| {
                verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).unwrap(),
                    &VerifyOptions::default(),
                )
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
            });
        });
        let sys = bounded::csp_solution(BITEMS, CAP);
        let corr = bounded::csp_correspondence(&sys, &problem, CAP);
        c.bench_function("buffer_verify/bounded_csp", |b| {
            b.iter(|| {
                verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).unwrap(),
                    &VerifyOptions::default(),
                )
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
            });
        });
        let sys = bounded::ada_solution(BITEMS, CAP);
        let corr = bounded::ada_correspondence(&sys, &problem, CAP);
        c.bench_function("buffer_verify/bounded_ada", |b| {
            b.iter(|| {
                verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).unwrap(),
                    &VerifyOptions::default(),
                )
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_buffers
}
criterion_main!(benches);
