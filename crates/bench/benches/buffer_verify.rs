//! E4–E5 — buffer verification benches: One-Slot and Bounded Buffer,
//! each on all three language substrates (Monitor, CSP, ADA). The
//! `bounded_*_dedup` series (F6) runs the same sweep with
//! `Explorer::dedup_computations` — identical outcome, each distinct
//! computation checked once (see `docs/PERFORMANCE.md`). The
//! `bounded_*_por` series (F7) runs it with sleep-set partial-order
//! reduction (`Explorer::reduce`): substrates whose oracle finds
//! commuting actions explore fewer schedules, the rest are exact
//! no-ops. The `bounded_*_auto` series runs the `--auto` strategy
//! picker: sample the instance, choose, sweep under the chosen flags —
//! the deterministic one-off decision is made outside the measured
//! loop, and the series must land within 10% of the best hand-picked
//! mode. The `bounded_*_incr` series (F8) pins incremental restriction
//! checking on (`IncrCheck::On`); the unsuffixed series run the default
//! `IncrCheck::Auto`, which already rides the incremental path on these
//! specs, so the F8 win shows up in the plain series' trajectory and
//! `_incr` vs plain isolates the mode-pinning delta (expected ≈0).

use criterion::{criterion_group, criterion_main, Criterion};
use gem_core::Computation;
use gem_lang::{Explorer, System};
use gem_problems::{bounded, one_slot};
use gem_spec::Specification;
use gem_verify::auto::{self, Strategy};
use gem_verify::{
    check_computation, sample_evidence, verify_system, Correspondence, IncrCheck, VerifyOptions,
};

const ITEMS: &[i64] = &[10, 20, 30];
const BITEMS: &[i64] = &[1, 2, 3, 4];
const CAP: usize = 2;

#[allow(clippy::too_many_arguments)] // bench table row, not an API
fn bench_one<S>(
    c: &mut Criterion,
    name: &str,
    sys: &S,
    problem: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
    dedup: bool,
    reduce: bool,
    incr: IncrCheck,
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let options = VerifyOptions {
        explorer: Explorer {
            dedup_computations: dedup,
            reduce,
            ..Explorer::default()
        },
        incr_check: incr,
        ..VerifyOptions::default()
    };
    c.bench_function(name, |b| {
        b.iter(|| {
            verify_system(sys, problem, corr, extract, &options)
                .map(|o| {
                    assert!(o.ok());
                    o.runs
                })
                .unwrap()
        });
    });
}

/// The `bounded_*_auto` series: the strategy picker samples, decides,
/// and the sweep runs under whatever it chose.
fn bench_auto<S>(
    c: &mut Criterion,
    name: &str,
    sys: &S,
    problem: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let defaults = VerifyOptions::default();
    let evidence = sample_evidence(
        &defaults.explorer,
        sys,
        extract,
        |comp| {
            let _ = check_computation(
                comp,
                problem,
                corr,
                defaults.strategy,
                defaults.check_program_legality,
            );
        },
        auto::AUTO_SAMPLES,
        auto::AUTO_CHECKS,
    );
    let decision = auto::choose(evidence);
    bench_one(
        c,
        name,
        sys,
        problem,
        corr,
        extract,
        decision.strategy == Strategy::Dedup,
        decision.strategy == Strategy::Por,
        IncrCheck::Auto,
    );
}

fn bench_buffers(c: &mut Criterion) {
    // E4: One-Slot Buffer.
    {
        let problem = one_slot::one_slot_spec();
        let sys = one_slot::monitor_solution(ITEMS);
        let corr = one_slot::monitor_correspondence(&sys, &problem);
        bench_one(
            c,
            "buffer_verify/one_slot_monitor",
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
            false,
            false,
            IncrCheck::Auto,
        );
        let sys = one_slot::csp_solution(ITEMS);
        let corr = one_slot::csp_correspondence(&sys, &problem);
        bench_one(
            c,
            "buffer_verify/one_slot_csp",
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
            false,
            false,
            IncrCheck::Auto,
        );
        let sys = one_slot::ada_solution(ITEMS);
        let corr = one_slot::ada_correspondence(&sys, &problem);
        bench_one(
            c,
            "buffer_verify/one_slot_ada",
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
            false,
            false,
            IncrCheck::Auto,
        );
    }
    // E5: Bounded Buffer, capacity 2 — plus the F6 dedup and F7 POR
    // ablations.
    {
        let problem = bounded::bounded_spec(BITEMS.len(), CAP);
        for (suffix, dedup, reduce, incr) in [
            ("", false, false, IncrCheck::Auto),
            ("_dedup", true, false, IncrCheck::Auto),
            ("_por", false, true, IncrCheck::Auto),
            ("_incr", false, false, IncrCheck::On),
        ] {
            let sys = bounded::monitor_solution(BITEMS, CAP);
            let corr = bounded::monitor_correspondence(&sys, &problem, CAP);
            bench_one(
                c,
                &format!("buffer_verify/bounded_monitor{suffix}"),
                &sys,
                &problem,
                &corr,
                |s| sys.computation(s).unwrap(),
                dedup,
                reduce,
                incr,
            );
            let sys = bounded::csp_solution(BITEMS, CAP);
            let corr = bounded::csp_correspondence(&sys, &problem, CAP);
            bench_one(
                c,
                &format!("buffer_verify/bounded_csp{suffix}"),
                &sys,
                &problem,
                &corr,
                |s| sys.computation(s).unwrap(),
                dedup,
                reduce,
                incr,
            );
            let sys = bounded::ada_solution(BITEMS, CAP);
            let corr = bounded::ada_correspondence(&sys, &problem, CAP);
            bench_one(
                c,
                &format!("buffer_verify/bounded_ada{suffix}"),
                &sys,
                &problem,
                &corr,
                |s| sys.computation(s).unwrap(),
                dedup,
                reduce,
                incr,
            );
        }
        // The picker, on the substrate where dedup is a known 3.4×
        // regression (bounded_monitor: every run a distinct
        // computation) and on the two where it's moot.
        let sys = bounded::monitor_solution(BITEMS, CAP);
        let corr = bounded::monitor_correspondence(&sys, &problem, CAP);
        bench_auto(
            c,
            "buffer_verify/bounded_monitor_auto",
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
        );
        let sys = bounded::csp_solution(BITEMS, CAP);
        let corr = bounded::csp_correspondence(&sys, &problem, CAP);
        bench_auto(
            c,
            "buffer_verify/bounded_csp_auto",
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
        );
        let sys = bounded::ada_solution(BITEMS, CAP);
        let corr = bounded::ada_correspondence(&sys, &problem, CAP);
        bench_auto(
            c,
            "buffer_verify/bounded_ada_auto",
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_buffers
}
criterion_main!(benches);
