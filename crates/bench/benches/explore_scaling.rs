//! F4 — verification cost: schedules explored vs number of transactions,
//! with the state-pruning ablation (sound for deadlock search only).
//!
//! Series reported, on the §9 Readers/Writers monitor (control-only
//! scripts):
//! * `all_runs/<R>r<W>w` — full DFS over all schedules (the basis of
//!   `PROG sat P` verification).
//! * `pruned/<R>r<W>w` — control-state-pruned DFS (deadlock search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_lang::monitor::readers_writers_monitor;
use gem_lang::Explorer;
use gem_problems::readers_writers::rw_program;
use std::ops::ControlFlow;

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_scaling");
    for &(readers, writers) in &[(1usize, 1usize), (2, 1), (1, 2), (2, 2)] {
        let sys = rw_program(readers_writers_monitor(), readers, writers, false);
        let label = format!("{readers}r{writers}w");
        // 2r2w exceeds 10⁶ schedules; the figure reports exploration cost
        // at a fixed 50k-run budget so the series stays comparable.
        let explorer = Explorer::with_max_runs(50_000);
        group.bench_with_input(BenchmarkId::new("all_runs", &label), &label, |b, _| {
            b.iter(|| {
                explorer
                    .for_each_run(&sys, |_, _| ControlFlow::Continue(()))
                    .runs
            });
        });
        group.bench_with_input(BenchmarkId::new("pruned", &label), &label, |b, _| {
            let explorer = Explorer {
                prune: true,
                ..Explorer::default()
            };
            b.iter(|| {
                explorer
                    .for_each_run(&sys, |_, _| ControlFlow::Continue(()))
                    .steps
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_explore
}
criterion_main!(benches);
