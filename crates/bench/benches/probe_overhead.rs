//! Probe hot-path overhead guard (ISSUE 4).
//!
//! The instrumentation layer promises that an uninstrumented run pays
//! only a disabled-probe check. This bench pins that promise so a
//! regression shows up in the perf trajectory:
//!
//! * `noop_add/1000` — 1000 counter increments through `&dyn Probe` on
//!   [`NoopProbe`]: should stay in the few-ns-per-call range.
//! * `noop_record/1000` / `stats_record/1000` — 1000 histogram samples
//!   through `Probe::record`, disabled and into a live [`StatsProbe`]:
//!   the log-bucket hot path must stay within noise of a counter add.
//! * `recorder_add/1000` — the same through the flight-recorder ring,
//!   the cost `--artifacts` opts into.
//! * `sweep_noop` / `sweep_recorder` — a small full exploration sweep
//!   under each probe; the delta is the real-world recorder overhead.
//! * `expr_eval/{interpreted,compiled}` — 1000 evaluations of a mixed
//!   arithmetic/boolean expression through the tree-walking
//!   `Expr::eval` over a `VarStore` vs the postfix Code IR over slot
//!   vectors (ISSUE 10): the per-step win the `--compile` path is built
//!   on, pinned at micro scale.

use std::ops::ControlFlow;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_core::Value;
use gem_lang::code::{ExprPool, SlotLayout};
use gem_lang::monitor::{readers_writers_monitor, SignalSemantics};
use gem_lang::{Explorer, Expr, VarStore};
use gem_obs::{NoopProbe, Probe, RecorderProbe, StatsProbe};
use gem_problems::readers_writers::rw_program_with_semantics;

fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_overhead");

    let noop: &dyn Probe = &NoopProbe;
    group.bench_with_input(BenchmarkId::new("noop_add", 1000), &1000u32, |b, &n| {
        b.iter(|| {
            for i in 0..n {
                if noop.enabled() {
                    noop.add("bench.counter", u64::from(i));
                }
            }
        });
    });

    group.bench_with_input(BenchmarkId::new("noop_record", 1000), &1000u32, |b, &n| {
        b.iter(|| {
            for i in 0..n {
                if noop.enabled() {
                    noop.record("bench.hist", u64::from(i));
                }
            }
        });
    });

    let stats = StatsProbe::new();
    let stats_dyn: &dyn Probe = &stats;
    group.bench_with_input(BenchmarkId::new("stats_record", 1000), &1000u32, |b, &n| {
        b.iter(|| {
            for i in 0..n {
                if stats_dyn.enabled() {
                    stats_dyn.record("bench.hist", u64::from(i));
                }
            }
        });
    });

    let recorder = RecorderProbe::new(256);
    let rec: &dyn Probe = &recorder;
    group.bench_with_input(BenchmarkId::new("recorder_add", 1000), &1000u32, |b, &n| {
        b.iter(|| {
            for i in 0..n {
                if rec.enabled() {
                    rec.add("bench.counter", u64::from(i));
                }
            }
        });
    });

    let sys = rw_program_with_semantics(
        readers_writers_monitor(),
        1,
        1,
        false,
        SignalSemantics::Hoare,
    );
    group.bench_function("sweep_noop", |b| {
        b.iter(|| {
            Explorer::default()
                .par_for_each_run_probed(&sys, &NoopProbe, |_, _| ControlFlow::Continue(()))
        });
    });
    let sweep_recorder = RecorderProbe::new(256);
    group.bench_function("sweep_recorder", |b| {
        b.iter(|| {
            Explorer::default()
                .par_for_each_run_probed(&sys, &sweep_recorder, |_, _| ControlFlow::Continue(()))
        });
    });

    // The guard/assignment shape the simulators evaluate per step:
    // `(rd = 0 && wr = 0) || (n + 1) * 2 > cap`.
    let expr = Expr::var("rd")
        .eq(Expr::int(0))
        .and(Expr::var("wr").eq(Expr::int(0)))
        .or(Expr::var("n")
            .add(Expr::int(1))
            .mul(Expr::int(2))
            .gt(Expr::var("cap")));
    let mut store = VarStore::new();
    for (name, v) in [("rd", 1), ("wr", 0), ("n", 3), ("cap", 8)] {
        store.set(name, Value::Int(v));
    }
    group.bench_with_input(
        BenchmarkId::new("expr_eval/interpreted", 1000),
        &1000u32,
        |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    expr.eval(&store).expect("well-typed");
                }
            });
        },
    );
    let mut locals = SlotLayout::new();
    for name in ["rd", "wr", "n", "cap"] {
        locals.intern(name);
    }
    let mut pool = ExprPool::new();
    let id = pool.compile(&expr, &locals, &SlotLayout::new());
    let lslots: Vec<Option<Value>> = [1, 0, 3, 8].map(|v| Some(Value::Int(v))).to_vec();
    group.bench_with_input(
        BenchmarkId::new("expr_eval/compiled", 1000),
        &1000u32,
        |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    pool.eval(id, &[], &lslots).expect("well-typed");
                }
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_probe_overhead
}
criterion_main!(benches);
