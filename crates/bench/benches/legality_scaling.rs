//! F2 — GEM legality checking vs number of events and group nesting.
//!
//! Series reported:
//! * `flat/<n>` — events/edges only, no group structure.
//! * `grouped/<n>` — the same computation with elements split across
//!   nested process groups (access checks per enable edge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_core::{check_legality, ComputationBuilder, NodeRef, Structure};

fn build(n_chains: usize, chain_len: usize, grouped: bool) -> gem_core::Computation {
    let mut s = Structure::new();
    let act = s.add_class("Act", &[]).expect("class");
    let els: Vec<_> = (0..n_chains)
        .map(|i| s.add_element(format!("P{i}"), &[act]).expect("element"))
        .collect();
    if grouped {
        // Pairs of elements share a group; groups nest into one system
        // group, so every intra-pair edge passes the access check.
        let mut groups = Vec::new();
        for (i, pair) in els.chunks(2).enumerate() {
            let members: Vec<NodeRef> = pair.iter().map(|&e| e.into()).collect();
            groups.push(s.add_group(format!("G{i}"), &members).expect("group"));
        }
        let members: Vec<NodeRef> = groups.into_iter().map(NodeRef::Group).collect();
        s.add_group("System", &members).expect("system group");
    }
    let mut b = ComputationBuilder::new(s);
    let mut last_pair: Vec<Option<gem_core::EventId>> = vec![None; n_chains];
    for _ in 0..chain_len {
        for (i, &el) in els.iter().enumerate() {
            let e = b.add_event(el, act, vec![]).expect("event");
            // Cross-enable within the pair partner (legal under grouping).
            let partner = i ^ 1;
            if partner < n_chains {
                if let Some(p) = last_pair[partner] {
                    b.enable(p, e).expect("edge");
                }
            }
            last_pair[i] = Some(e);
        }
    }
    b.seal().expect("acyclic")
}

fn bench_legality(c: &mut Criterion) {
    let mut group = c.benchmark_group("legality_scaling");
    for &(chains, len) in &[(4usize, 25usize), (8, 125), (16, 250), (32, 312)] {
        let n = chains * len;
        for grouped in [false, true] {
            let comp = build(chains, len, grouped);
            assert!(check_legality(&comp).is_empty());
            let label = if grouped { "grouped" } else { "flat" };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| check_legality(&comp).len());
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_legality
}
criterion_main!(benches);
