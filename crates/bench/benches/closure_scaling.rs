//! F1 — temporal-order closure construction vs number of events, with the
//! on-demand DFS reachability ablation (DESIGN.md §4).
//!
//! Series reported:
//! * `build/<n>` — materialising the full reachability matrix.
//! * `query_closure/<n>` — 1000 `precedes` queries against the matrix.
//! * `query_dfs/<n>` — the same 1000 queries answered by on-demand DFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::layered_edges;
use gem_core::{Closure, DfsReachability, EventId};

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_scaling");
    for &(layers, width) in &[(10usize, 10usize), (40, 25), (100, 50)] {
        let (n, edges) = layered_edges(layers, width, 2);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| Closure::from_edges(n, &edges).expect("acyclic"));
        });
        let closure = Closure::from_edges(n, &edges).expect("acyclic");
        let dfs = DfsReachability::from_edges(n, &edges);
        let queries: Vec<(EventId, EventId)> = (0..1000u32)
            .map(|i| {
                (
                    EventId::from_raw(i.wrapping_mul(2654435761) % n as u32),
                    EventId::from_raw(i.wrapping_mul(40503) % n as u32),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("query_closure", n), &n, |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .filter(|&&(x, y)| closure.precedes(x, y))
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("query_dfs", n), &n, |b, _| {
            b.iter(|| queries.iter().filter(|&&(x, y)| dfs.precedes(x, y)).count());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_closure
}
criterion_main!(benches);
