//! E7–E8 — the distributed applications: database update propagation and
//! asynchronous Game of Life.
//!
//! Series reported:
//! * `db_update_verify` — E7: full sat-check over all schedules
//!   (3 clients, 2 replicas).
//! * `db_update_deadlock` — E7: deadlock sweep.
//! * `life_random_run` — E8: one random schedule of a 3×3 blinker for
//!   2 generations, end-to-end (execution + functional assertion).
//! * `life_block_verify` — E8: sampled sat-check of the 2×2 block.

use criterion::{criterion_group, criterion_main, Criterion};
use gem_lang::{Explorer, System};
use gem_problems::{db_update, life};
use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};
use rand::SeedableRng;

fn bench_distributed(c: &mut Criterion) {
    {
        let sys = db_update::db_update_program(3, 2);
        let problem = db_update::db_update_spec(2, 3);
        let corr = db_update::db_update_correspondence(&sys, &problem, 2);
        c.bench_function("distributed/db_update_verify", |b| {
            b.iter(|| {
                let outcome = verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).expect("acyclic"),
                    &VerifyOptions::default(),
                )
                .expect("consistent");
                assert!(outcome.ok());
                outcome.runs
            });
        });
        c.bench_function("distributed/db_update_deadlock", |b| {
            b.iter(|| assert_no_deadlock(&sys, &Explorer::default()).expect("deadlock-free"));
        });
    }
    {
        let grid = life::blinker();
        let gens = 2;
        let sys = life::life_program(&grid, gens);
        let reference = life::sync_life(&grid, gens);
        c.bench_function("distributed/life_random_run", |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let (state, _) = Explorer::default().random_run(&sys, &mut rng);
                assert!(sys.is_complete(&state));
                let pid = sys.program().process_index("cell_1_1").expect("cell");
                let alive = state.local(pid, "alive").unwrap().as_int().unwrap();
                assert_eq!(alive, i64::from(reference[gens - 1].get(1, 1)));
            });
        });
    }
    {
        let grid = life::block();
        let gens = 2;
        let sys = life::life_program(&grid, gens);
        let problem = life::life_spec(&grid, gens);
        let corr = life::life_correspondence(&sys, &problem, &grid);
        c.bench_function("distributed/life_block_verify", |b| {
            b.iter(|| {
                let outcome = verify_system(
                    &sys,
                    &problem,
                    &corr,
                    |s| sys.computation(s).expect("acyclic"),
                    &VerifyOptions {
                        explorer: Explorer::with_max_runs(20),
                        ..VerifyOptions::default()
                    },
                )
                .expect("consistent");
                assert!(outcome.ok());
                outcome.runs
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_distributed
}
criterion_main!(benches);
