//! F5 — parallel exploration: wall-clock speedup of
//! `Explorer::par_for_each_run` over serial DFS as the worker count
//! grows, on the 2R+2W Readers/Writers monitor (the F4 workload, plus a
//! deeper multi-round instance).
//!
//! Series reported:
//! * `jobs/<N>` — 2R+2W control-only program at a fixed 50k-run budget,
//!   explored with `jobs = N` (N = 1 is the serial baseline).
//! * `rounds2_jobs/<N>` — 2R+2W with two transactions per process (the
//!   `rw_rounds_program` instance), 50k-run budget.
//!
//! The parallel explorer commits results in serial DFS order, so every
//! series computes the identical run multiset — the bench measures pure
//! scheduling overhead and speedup. On a single-core host all series
//! degenerate to roughly serial cost plus pool overhead; the speedup
//! claim needs a multi-core runner (see EXPERIMENTS.md F5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_lang::monitor::readers_writers_monitor;
use gem_lang::Explorer;
use gem_problems::readers_writers::{rw_program, rw_rounds_program};
use std::ops::ControlFlow;

fn bench_par_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_par_scaling");
    let flat = rw_program(readers_writers_monitor(), 2, 2, false);
    let deep = rw_rounds_program(readers_writers_monitor(), 2, 2, 2);
    for jobs in [1usize, 2, 4] {
        let explorer = Explorer {
            jobs,
            ..Explorer::with_max_runs(50_000)
        };
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, _| {
            b.iter(|| {
                explorer
                    .par_for_each_run(&flat, |_, _| ControlFlow::Continue(()))
                    .runs
            });
        });
        group.bench_with_input(BenchmarkId::new("rounds2_jobs", jobs), &jobs, |b, _| {
            b.iter(|| {
                explorer
                    .par_for_each_run(&deep, |_, _| ControlFlow::Continue(()))
                    .runs
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_par_explore
}
criterion_main!(benches);
