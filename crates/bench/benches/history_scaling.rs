//! F3 — history enumeration, linearization enumeration, and vhs checking
//! vs computation size/width.
//!
//! Series reported:
//! * `histories/<w>x<l>` — enumerate all order ideals.
//! * `linearizations/<w>x<l>` — enumerate all interleavings.
//! * `vhs_check/<w>x<l>` — validate a greedy-step history sequence.
//! * `check_safety/<w>x<l>` — model-check a ◻-safety formula over all
//!   linearizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::layered_computation;
use gem_core::{history_count, linearization_count, HistorySequence};
use gem_logic::{check, Formula, Strategy};

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_scaling");
    for &(width, layers) in &[(2usize, 4usize), (3, 4), (2, 6), (3, 5)] {
        let comp = layered_computation(layers, width, 1);
        let label = format!("{width}x{layers}");
        group.bench_with_input(BenchmarkId::new("histories", &label), &label, |b, _| {
            b.iter(|| history_count(&comp, usize::MAX));
        });
        group.bench_with_input(
            BenchmarkId::new("linearizations", &label),
            &label,
            |b, _| {
                b.iter(|| linearization_count(&comp, usize::MAX));
            },
        );
        group.bench_with_input(BenchmarkId::new("vhs_check", &label), &label, |b, _| {
            let seq = HistorySequence::greedy_steps(&comp);
            b.iter(|| HistorySequence::new(&comp, seq.histories().to_vec()).expect("valid"));
        });
        // Safety: the first event of element P0 always precedes the last
        // event of the same element.
        let p0 = comp.structure().element("P0").expect("P0");
        let first = comp.events_at(p0)[0];
        let last = *comp.events_at(p0).last().expect("nonempty");
        let f = Formula::occurred(last)
            .implies(Formula::occurred(first))
            .henceforth();
        group.bench_with_input(BenchmarkId::new("check_safety", &label), &label, |b, _| {
            b.iter(|| {
                let r = check(&f, &comp, Strategy::Linearizations { limit: 1_000_000 })
                    .expect("evaluable");
                assert!(r.holds);
                r.sequences_checked
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_history
}
criterion_main!(benches);
