//! # gem-bench — benchmark support library
//!
//! Shared generators for the criterion benches (see `benches/`): synthetic
//! DAG computations for the scaling figures F1–F3 and ready-made
//! verification instances for the experiment benches E1–E8. The bench
//! targets are the executable index of EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gem_core::{Computation, ComputationBuilder, EventId, Structure};

/// Builds a layered synthetic computation: `layers × width` events, each
/// event enabled by `fan_in` events of the previous layer, every chain of
/// a layer on its own element. Deterministic in its arguments.
pub fn layered_computation(layers: usize, width: usize, fan_in: usize) -> Computation {
    let mut s = Structure::new();
    let act = s.add_class("Act", &[]).expect("fresh class");
    let els: Vec<_> = (0..width)
        .map(|w| s.add_element(format!("P{w}"), &[act]).expect("element"))
        .collect();
    let mut b = ComputationBuilder::new(s);
    let mut prev: Vec<EventId> = Vec::new();
    for _ in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for (w, &el) in els.iter().enumerate() {
            let e = b.add_event(el, act, vec![]).expect("event");
            for k in 0..fan_in.min(prev.len()) {
                let src = prev[(w + k) % prev.len()];
                b.enable(src, e).expect("edge");
            }
            cur.push(e);
        }
        prev = cur;
    }
    b.seal().expect("acyclic")
}

/// The edge list of a layered DAG, for benching closure construction
/// without the computation wrapper.
pub fn layered_edges(
    layers: usize,
    width: usize,
    fan_in: usize,
) -> (usize, Vec<(EventId, EventId)>) {
    let c = layered_computation(layers, width, fan_in);
    (c.event_count(), c.enable_edges().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_shape() {
        let c = layered_computation(4, 3, 2);
        assert_eq!(c.event_count(), 12);
        assert!(gem_core::is_legal(&c));
        // First-layer events unordered across elements; within an element
        // the layers chain.
        let e0 = EventId::from_raw(0);
        let e1 = EventId::from_raw(1);
        assert!(c.concurrent(e0, e1));
    }

    #[test]
    fn edges_nonempty() {
        let (n, edges) = layered_edges(3, 2, 1);
        assert_eq!(n, 6);
        assert!(!edges.is_empty());
    }
}
