//! Compiled step execution: slot-resolved environments and a flat code IR.
//!
//! The substrate simulators originally evaluated every guard and
//! assignment by walking the [`Expr`] tree against a name-keyed
//! [`VarStore`](crate::VarStore) — and the monitor simulator rebuilt that
//! environment by *cloning the whole global map plus locals for every
//! single statement*. This module is the compilation layer that removes
//! both costs. It runs once at system-build time and is used by every
//! `enabled`/`apply` step:
//!
//! * **Slot resolution** ([`SlotLayout`]): every variable name is
//!   interned to a numeric slot in a two-scope layout — one global scope
//!   (monitor/shared variables) and one per-process local scope (entry
//!   parameters, CSP/ADA locals). The hot path reads two flat `Vec`s in
//!   place; the name-keyed `VarStore` remains at the API boundary for
//!   specs, reports, and blame.
//! * **Expression IR** ([`ExprPool`]): each [`Expr`] compiles to a flat
//!   postfix instruction span over a shared constant pool, evaluated on a
//!   reusable scratch stack. Evaluation order, results, and
//!   [`RuntimeError`]s are bit-for-bit identical to [`Expr::eval`] — the
//!   tree interpreter stays available as the differential oracle behind
//!   `--compile=off`.
//!
//! Statement bodies compile to substrate-specific flat basic-block
//! programs (jump targets instead of cloned `VecDeque` frames); those op
//! sets live with each simulator, built on the pieces here.

use std::cell::RefCell;
use std::collections::BTreeMap;

use gem_core::Value;

use crate::ast::{apply_bin, Expr, RuntimeError};

/// Whether the simulators execute compiled programs or the tree-walking
/// interpreter. `Auto` resolves to compiled — the interpreter exists as a
/// differential oracle, not a fallback the compiler ever needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CompileMode {
    /// Let the system choose (currently always compiled).
    #[default]
    Auto,
    /// Force compiled step execution.
    On,
    /// Force the tree-walking interpreter (the differential oracle).
    Off,
}

impl CompileMode {
    /// True when this mode selects compiled execution.
    pub fn enabled(self) -> bool {
        !matches!(self, CompileMode::Off)
    }

    /// The flag spelling (`"auto"` / `"on"` / `"off"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CompileMode::Auto => "auto",
            CompileMode::On => "on",
            CompileMode::Off => "off",
        }
    }
}

/// Slot sentinel: the name is absent from the scope.
pub const SLOT_NONE: u32 = u32::MAX;

/// An interned variable scope: name → slot, assigned in first-intern
/// order. One layout describes the global scope of a system; one per
/// process/entry describes the local scope.
#[derive(Clone, Debug, Default)]
pub struct SlotLayout {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl SlotLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its slot (existing or newly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = u32::try_from(self.names.len()).expect("slot count fits u32");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// The slot of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never assigned.
    pub fn name(&self, slot: u32) -> &str {
        &self.names[slot as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Slot-ordered iterator over interned names.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// Which construct demanded a boolean, for the exact interpreter panic
/// message when a compiled condition evaluates to a non-boolean.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CondKind {
    /// An `IF` condition.
    If,
    /// A `WHILE` condition.
    While,
    /// An alternative/select guard.
    Guard,
}

impl CondKind {
    /// The interpreter's `expect` message for a non-boolean condition.
    pub fn expect_msg(self) -> &'static str {
        match self {
            CondKind::If => "IF condition must be boolean",
            CondKind::While => "WHILE condition must be boolean",
            CondKind::Guard => "guard must be boolean",
        }
    }
}

/// Handle to one compiled expression inside an [`ExprPool`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExprId(u32);

/// One postfix instruction.
#[derive(Clone, Debug)]
enum Op {
    /// Push constant-pool entry.
    Const(u32),
    /// Push a variable: the bound local slot if present, else the global
    /// slot, else `UndefinedVariable(names[name])`. Either slot may be
    /// [`SLOT_NONE`] when the name is absent from that scope.
    Load { local: u32, global: u32, name: u32 },
    /// Boolean negation of the top of stack.
    Not,
    /// Integer negation of the top of stack.
    Neg,
    /// Apply a binary operator to the top two stack values.
    Bin(crate::ast::BinOp),
}

/// Build-time and size counters of a system's compiled code, surfaced as
/// the `code.*` / `explore.compile_ns` observability counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CodeStats {
    /// Compiled expressions.
    pub exprs: u64,
    /// Total postfix instructions across all expressions.
    pub ops: u64,
    /// Constant-pool entries.
    pub consts: u64,
    /// Compiled statement programs (entry bodies, process/task bodies).
    pub programs: u64,
    /// Resolved variable slots across all scopes.
    pub slots: u64,
    /// Wall time spent compiling at system build, in nanoseconds.
    pub compile_ns: u64,
}

/// A pool of compiled expressions: flat postfix code spans over a shared
/// constant pool, evaluated on a reusable per-thread scratch stack.
#[derive(Clone, Debug, Default)]
pub struct ExprPool {
    code: Vec<Op>,
    consts: Vec<Value>,
    names: Vec<String>,
    name_index: BTreeMap<String, u32>,
    /// `ExprId` → `[start, end)` span in `code`.
    spans: Vec<(u32, u32)>,
}

thread_local! {
    /// Scratch evaluation stack, reused across `eval` calls so the hot
    /// path performs no per-expression allocation.
    static SCRATCH: RefCell<Vec<Value>> = const { RefCell::new(Vec::new()) };
}

impl ExprPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `expr` against the given scopes. `locals` wins over
    /// `globals` when a bound local shadows a global name — exactly the
    /// interpreter's overlay environment.
    pub fn compile(&mut self, expr: &Expr, locals: &SlotLayout, globals: &SlotLayout) -> ExprId {
        let start = u32::try_from(self.code.len()).expect("code size fits u32");
        self.emit(expr, locals, globals);
        let end = u32::try_from(self.code.len()).expect("code size fits u32");
        let id = u32::try_from(self.spans.len()).expect("expr count fits u32");
        self.spans.push((start, end));
        ExprId(id)
    }

    fn emit(&mut self, expr: &Expr, locals: &SlotLayout, globals: &SlotLayout) {
        match expr {
            Expr::Lit(v) => {
                let c = u32::try_from(self.consts.len()).expect("const count fits u32");
                self.consts.push(v.clone());
                self.code.push(Op::Const(c));
            }
            Expr::Var(name) => {
                let local = locals.get(name).unwrap_or(SLOT_NONE);
                let global = globals.get(name).unwrap_or(SLOT_NONE);
                let name = self.intern_name(name);
                self.code.push(Op::Load {
                    local,
                    global,
                    name,
                });
            }
            Expr::Not(e) => {
                self.emit(e, locals, globals);
                self.code.push(Op::Not);
            }
            Expr::Neg(e) => {
                self.emit(e, locals, globals);
                self.code.push(Op::Neg);
            }
            Expr::Bin(op, a, b) => {
                self.emit(a, locals, globals);
                self.emit(b, locals, globals);
                self.code.push(Op::Bin(*op));
            }
        }
    }

    fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.name_index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("name count fits u32");
        self.names.push(name.to_owned());
        self.name_index.insert(name.to_owned(), i);
        i
    }

    /// Evaluates a compiled expression against flat scopes. `globals` is
    /// fully populated (every global slot holds a value); `locals` may
    /// have unbound (`None`) slots — an unbound local falls through to
    /// the global scope, matching the interpreter's environment overlay.
    ///
    /// # Errors
    ///
    /// Returns exactly the [`RuntimeError`] that [`Expr::eval`] would:
    /// same variant, same message, raised at the same evaluation point
    /// (strict left-to-right, no short-circuiting, first error wins).
    pub fn eval(
        &self,
        id: ExprId,
        globals: &[Value],
        locals: &[Option<Value>],
    ) -> Result<Value, RuntimeError> {
        SCRATCH.with(|cell| {
            let mut stack = cell.borrow_mut();
            let base = stack.len();
            let result = self.eval_on(id, globals, locals, &mut stack);
            stack.truncate(base);
            result
        })
    }

    fn eval_on(
        &self,
        id: ExprId,
        globals: &[Value],
        locals: &[Option<Value>],
        stack: &mut Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        let (start, end) = self.spans[id.0 as usize];
        for op in &self.code[start as usize..end as usize] {
            match op {
                Op::Const(c) => stack.push(self.consts[*c as usize].clone()),
                Op::Load {
                    local,
                    global,
                    name,
                } => {
                    let bound = if *local == SLOT_NONE {
                        None
                    } else {
                        locals[*local as usize].as_ref()
                    };
                    match bound {
                        Some(v) => stack.push(v.clone()),
                        None if *global != SLOT_NONE => {
                            stack.push(globals[*global as usize].clone());
                        }
                        None => {
                            return Err(RuntimeError::UndefinedVariable(
                                self.names[*name as usize].clone(),
                            ))
                        }
                    }
                }
                Op::Not => match stack.pop().expect("operand on stack") {
                    Value::Bool(b) => stack.push(Value::Bool(!b)),
                    v => {
                        return Err(RuntimeError::TypeError {
                            op: "not".into(),
                            operand: v.to_string(),
                        })
                    }
                },
                Op::Neg => match stack.pop().expect("operand on stack") {
                    Value::Int(i) => stack.push(Value::Int(-i)),
                    v => {
                        return Err(RuntimeError::TypeError {
                            op: "neg".into(),
                            operand: v.to_string(),
                        })
                    }
                },
                Op::Bin(op) => {
                    let b = stack.pop().expect("right operand on stack");
                    let a = stack.pop().expect("left operand on stack");
                    stack.push(apply_bin(*op, a, b)?);
                }
            }
        }
        Ok(stack.pop().expect("result on stack"))
    }

    /// Number of compiled expressions.
    pub fn expr_count(&self) -> usize {
        self.spans.len()
    }

    /// Total postfix instructions across all expressions.
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Constant-pool size.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarStore;

    fn layouts() -> (SlotLayout, SlotLayout) {
        let mut globals = SlotLayout::new();
        globals.intern("x");
        globals.intern("flag");
        let mut locals = SlotLayout::new();
        locals.intern("p");
        locals.intern("x"); // shadows the global when bound
        (locals, globals)
    }

    fn scopes() -> (Vec<Value>, Vec<Option<Value>>) {
        (
            vec![Value::Int(3), Value::Bool(true)],
            vec![Some(Value::Int(10)), None],
        )
    }

    /// Tree-eval environment equivalent to `scopes()`: globals overlaid
    /// with the *bound* locals.
    fn env() -> VarStore {
        let mut e = VarStore::new();
        e.set("x", Value::Int(3));
        e.set("flag", Value::Bool(true));
        e.set("p", Value::Int(10));
        e
    }

    fn both(expr: &Expr) -> (Result<Value, RuntimeError>, Result<Value, RuntimeError>) {
        let (locals, globals) = layouts();
        let mut pool = ExprPool::new();
        let id = pool.compile(expr, &locals, &globals);
        let (gvals, lvals) = scopes();
        (expr.eval(&env()), pool.eval(id, &gvals, &lvals))
    }

    #[test]
    fn matches_tree_eval_on_values() {
        for expr in [
            Expr::var("x").add(Expr::int(4)).mul(Expr::var("p")),
            Expr::var("flag").and(Expr::var("x").lt(Expr::int(5))),
            Expr::var("x").neg().sub(Expr::int(1)),
            Expr::bool(false).or(Expr::var("flag")).not(),
            Expr::str("a").ne(Expr::str("b")),
        ] {
            let (tree, compiled) = both(&expr);
            assert_eq!(tree, compiled, "{expr:?}");
        }
    }

    #[test]
    fn matches_tree_eval_on_errors() {
        for expr in [
            Expr::var("missing").add(Expr::int(1)),
            Expr::var("flag").add(Expr::int(1)),
            Expr::int(1).div(Expr::int(0)),
            Expr::int(1).rem(Expr::int(0)),
            Expr::int(1).not(),
            Expr::bool(true).neg(),
            // Left error beats right error (no short-circuit, first wins).
            Expr::var("missing").and(Expr::int(1).div(Expr::int(0))),
            // And/Or evaluate both sides: the right error still surfaces.
            Expr::bool(true).or(Expr::var("missing")),
        ] {
            let (tree, compiled) = both(&expr);
            assert_eq!(tree, compiled, "{expr:?}");
        }
    }

    #[test]
    fn unbound_local_falls_through_to_global() {
        // "x" is a local slot but unbound, so the global (3) shows
        // through — the interpreter's overlay semantics.
        let (tree, compiled) = both(&Expr::var("x"));
        assert_eq!(compiled, Ok(Value::Int(3)));
        assert_eq!(tree, compiled);
    }

    #[test]
    fn slot_layout_interns_stably() {
        let mut l = SlotLayout::new();
        assert!(l.is_empty());
        let a = l.intern("a");
        let b = l.intern("b");
        assert_eq!(l.intern("a"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(l.get("b"), Some(1));
        assert_eq!(l.get("c"), None);
        assert_eq!(l.name(1), "b");
        assert_eq!(l.len(), 2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn pool_counters_reflect_compilation() {
        let (locals, globals) = layouts();
        let mut pool = ExprPool::new();
        pool.compile(&Expr::var("x").add(Expr::int(1)), &locals, &globals);
        pool.compile(&Expr::bool(true), &locals, &globals);
        assert_eq!(pool.expr_count(), 2);
        assert_eq!(pool.op_count(), 4);
        assert_eq!(pool.const_count(), 2);
    }

    #[test]
    fn scratch_stack_clears_after_error() {
        // An error mid-expression must not leak operands into the next
        // evaluation on the same thread.
        let (locals, globals) = layouts();
        let mut pool = ExprPool::new();
        let bad = pool.compile(&Expr::int(1).add(Expr::var("missing")), &locals, &globals);
        let good = pool.compile(&Expr::int(2).add(Expr::int(3)), &locals, &globals);
        let (gvals, lvals) = scopes();
        assert!(pool.eval(bad, &gvals, &lvals).is_err());
        assert_eq!(pool.eval(good, &gvals, &lvals), Ok(Value::Int(5)));
    }
}
