//! Bounded exhaustive exploration of a concurrent system's schedules.
//!
//! The verification methodology of §9 requires quantifying over the legal
//! computations of a program specification. The substrates in this crate
//! (Monitor, CSP, ADA) generate a GEM computation per *schedule*; this
//! module enumerates all schedules up to configurable bounds — the
//! machine-checked stand-in for the paper's hand proofs (see DESIGN.md).
//!
//! A [`System`] exposes its nondeterminism as a set of enabled actions per
//! state; [`Explorer::for_each_run`] drives a depth-first search over all
//! maximal action sequences. No state pruning is performed by default:
//! restrictions depend on the *computation* (the full event past), so two
//! schedules reaching the same control state must still both be checked.
//! A state-hash pruning mode is available for pure state properties such
//! as deadlock-freedom (the ablation of DESIGN.md §4).
//!
//! Two opt-in fast paths cut the cost of the default full sweep without
//! giving up its guarantees. Systems that implement
//! [`System::checkpoint`]/[`System::undo`] let the DFS mutate one shared
//! state along the schedule and roll it back on backtrack, instead of
//! cloning the whole accumulated trace per edge. And
//! [`Explorer::dedup_computations`] lets *computation-aware* drivers (the
//! verify layer, the CLI) skip re-checking a run whose sealed computation
//! was already seen: unlike control-state pruning this is sound for trace
//! properties, because two schedules sealing to the same computation
//! satisfy exactly the same restrictions (the Mazurkiewicz-trace view —
//! see docs/PERFORMANCE.md). Every run is still *enumerated* (run counts
//! and probe reports are unchanged); only the per-run check is skipped.
//!
//! A third opt-in, [`Explorer::reduce`], goes further than dedup: instead
//! of enumerating every schedule and skipping the check for repeats, it
//! uses classic *sleep sets* (Godefroid) over the substrate's
//! [`System::independent`] oracle to avoid *exploring* redundant
//! interleavings at all — roughly one representative schedule per sealed
//! computation. Sound for the same reason dedup is (equal computations
//! satisfy equal restrictions), but run counts shrink: [`ExploreStats`]
//! reports the representatives explored (`por_runs`) and the branches
//! pruned (`sleep_skipped`).

use std::collections::HashSet;
use std::fmt;
use std::ops::ControlFlow;
use std::time::Instant;

use gem_obs::{ambient, NoopProbe, Probe};
use rand::Rng;

/// Records one `enabled`-scan width sample (`explore.step.enabled_width`)
/// on the ambient probe. Substrate simulators call this from
/// [`System::enabled`] for non-empty scans only, so the histogram counts
/// exactly one sample per branching node regardless of `jobs` (the
/// parallel frontier walk re-scans dead-end nodes it hands to workers;
/// skipping empty scans keeps those from double-counting).
pub(crate) fn record_enabled_width(n: usize) {
    if n > 0 {
        ambient::record("explore.step.enabled_width", n as u64);
    }
}

/// Starts an apply-cost measurement, timestamping only when an ambient
/// probe is installed somewhere (one relaxed atomic load otherwise).
pub(crate) fn apply_timer() -> Option<Instant> {
    ambient::active().then(Instant::now)
}

/// Finishes an apply-cost measurement started by [`apply_timer`]: one
/// `explore.step.apply_ns` histogram sample per applied edge.
pub(crate) fn record_apply_ns(t0: Option<Instant>) {
    if let Some(t0) = t0 {
        ambient::record(
            "explore.step.apply_ns",
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Records one checkpoint-rewind depth sample
/// (`explore.step.undo_depth`): how many trace events a [`System::undo`]
/// rolled back. Serial sweeps undo every edge; parallel sweeps only undo
/// inside worker subtrees (the frontier walk clones instead), so sample
/// counts are invariant across `jobs ≥ 2` at a fixed split depth but
/// lower than serial by the frontier edge count.
pub(crate) fn record_undo_depth(events_truncated: usize) {
    ambient::record("explore.step.undo_depth", events_truncated as u64);
}

/// A concurrent system driven by scheduler choices.
pub trait System {
    /// Full system state, including the event trace being accumulated.
    type State: Clone;
    /// One scheduler choice. `PartialEq` is required so sleep sets can
    /// match actions across sibling branches of the DFS.
    type Action: Clone + PartialEq + std::fmt::Debug;
    /// Undo journal entry for the opt-in apply/undo fast path: whatever
    /// [`System::undo`] needs to roll one [`System::apply`] back. Systems
    /// without the fast path use `()`.
    type Checkpoint;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// The actions enabled in `state`. An empty result means the run is
    /// over (completed or deadlocked).
    fn enabled(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Applies `action` to `state`.
    fn apply(&self, state: &mut Self::State, action: &Self::Action);

    /// True if `state` is a proper terminal state (all processes
    /// finished). A state with no enabled actions that is *not* complete
    /// is a deadlock.
    fn is_complete(&self, state: &Self::State) -> bool;

    /// Optional hash of the *control* state (excluding the trace), used
    /// only by pruning exploration. `None` (the default) disables pruning
    /// for this system.
    fn control_key(&self, _state: &Self::State) -> Option<u64> {
        None
    }

    /// Snapshots whatever one [`System::apply`] is about to change, so
    /// [`System::undo`] can restore it. Returning `Some` opts the system
    /// into the exploration fast path that mutates a single shared state
    /// along the schedule instead of cloning the accumulated trace per
    /// DFS edge; `None` (the default) keeps the clone-per-edge path.
    ///
    /// The contract: for every state `s` and enabled action `a`,
    /// `checkpoint(s)` then `apply(s, a)` then `undo(s, cp)` must leave
    /// `s` observably identical to the original (same `enabled`,
    /// `is_complete`, `control_key`, and extracted computation).
    fn checkpoint(&self, _state: &Self::State) -> Option<Self::Checkpoint> {
        None
    }

    /// Rolls back the single [`System::apply`] performed since
    /// `checkpoint` was taken. Only called with a checkpoint this system
    /// returned, so systems that never return `Some` can leave the
    /// default (which panics).
    fn undo(&self, _state: &mut Self::State, _checkpoint: Self::Checkpoint) {
        unreachable!("System::undo called without System::checkpoint support")
    }

    /// Independence oracle for partial-order reduction
    /// ([`Explorer::reduce`]). Must return `true` only if `a` and `b` are
    /// both enabled in `state` and *commute there*: neither disables the
    /// other, and executing `a·b` and `b·a` from `state` yields the same
    /// state and computations with equal canonical keys (equivalently:
    /// the two orders emit the same per-element event sequences). The
    /// explorer only calls this with two distinct actions both enabled in
    /// `state`.
    ///
    /// Claiming independence for a dependent pair is **unsound** (runs
    /// whose computations are genuinely distinct get pruned); answering
    /// `false` is always safe. The default is maximally conservative —
    /// nothing commutes — which makes [`Explorer::reduce`] a no-op for
    /// systems that do not implement the oracle.
    fn independent(&self, _state: &Self::State, _a: &Self::Action, _b: &Self::Action) -> bool {
        false
    }

    /// The computation builder accumulating `state`'s event trace, if
    /// this system grows its trace in a [`gem_core::ComputationBuilder`]
    /// whose edges always target the newest event. Exposing it lets
    /// incremental observers (prefix-sharing restriction checkers, see
    /// `gem_verify`) read the computation-under-construction and its undo
    /// journals without sealing; `None` (the default) keeps such
    /// observers on their batch path.
    fn trace_builder<'a>(
        &self,
        _state: &'a Self::State,
    ) -> Option<&'a gem_core::ComputationBuilder> {
        None
    }
}

/// Why an exploration stopped short of the full schedule space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TruncationReason {
    /// The [`Explorer::max_runs`] cap stopped the search.
    RunLimit,
    /// The [`Explorer::max_steps`] cap stopped the search.
    StepLimit,
    /// At least one run was cut off at [`Explorer::max_depth`]; the
    /// search itself ran to completion but those runs are not maximal.
    DepthLimit,
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::RunLimit => "run limit",
            Self::StepLimit => "step limit",
            Self::DepthLimit => "depth limit",
        })
    }
}

impl TruncationReason {
    /// Stable machine-readable name, used as a probe counter suffix.
    pub fn key(self) -> &'static str {
        match self {
            Self::RunLimit => "run_limit",
            Self::StepLimit => "step_limit",
            Self::DepthLimit => "depth_limit",
        }
    }
}

/// Statistics from an exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Number of maximal runs visited.
    pub runs: usize,
    /// Total actions applied across all runs.
    pub steps: usize,
    /// Why the search was cut short, or `None` if it was exhaustive.
    /// A run-limit or step-limit stop supersedes a depth-limit flag.
    pub truncation: Option<TruncationReason>,
    /// Runs reported at the depth limit while actions were still enabled.
    pub depth_limited_runs: usize,
    /// Longest run prefix reached (the DFS depth high-water mark).
    pub max_depth_seen: usize,
    /// States skipped by control-key pruning (already seen).
    pub prune_hits: usize,
    /// States admitted by control-key pruning (seen for the first time).
    pub prune_misses: usize,
    /// Runs whose sealed computation was already seen, so the per-run
    /// check was skipped (computation-level deduplication; filled in by
    /// computation-aware drivers such as the verify layer and the CLI).
    pub dedup_hits: usize,
    /// Runs whose sealed computation was seen for the first time.
    pub dedup_misses: usize,
    /// Enabled actions skipped because they were in the sleep set
    /// (branches pruned by partial-order reduction; always zero unless
    /// [`Explorer::reduce`] is on and the system's oracle claims some
    /// independence).
    pub sleep_skipped: usize,
    /// Independence-oracle queries answered "independent" while
    /// filtering child sleep sets (zero unless [`Explorer::reduce`]).
    /// The grant rate is the per-instance signal for how much structure
    /// the oracle certifies — a denial-heavy instance cannot reduce.
    pub oracle_grants: usize,
    /// Independence-oracle queries answered "dependent".
    pub oracle_denials: usize,
    /// Maximal runs visited while [`Explorer::reduce`] was on — each one
    /// a representative linearization of its computation. Equal to `runs`
    /// under reduction, zero otherwise; kept separate so mixed reports
    /// stay unambiguous.
    pub por_runs: usize,
}

impl ExploreStats {
    /// True if any bound cut the exploration short.
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} run(s), {} step(s), max depth {}",
            self.runs, self.steps, self.max_depth_seen
        )?;
        if self.prune_hits > 0 || self.prune_misses > 0 {
            write!(
                f,
                ", pruned {}/{}",
                self.prune_hits,
                self.prune_hits + self.prune_misses
            )?;
        }
        if self.dedup_hits > 0 || self.dedup_misses > 0 {
            write!(
                f,
                ", {} of {} computation(s) deduped",
                self.dedup_hits,
                self.dedup_hits + self.dedup_misses
            )?;
        }
        if self.sleep_skipped > 0 || self.por_runs > 0 {
            write!(
                f,
                ", POR: {} representative(s), {} branch(es) slept",
                self.por_runs, self.sleep_skipped
            )?;
        }
        if self.oracle_grants + self.oracle_denials > 0 {
            write!(
                f,
                ", oracle {}/{} independent",
                self.oracle_grants,
                self.oracle_grants + self.oracle_denials
            )?;
        }
        if self.depth_limited_runs > 0 {
            write!(f, ", {} depth-limited run(s)", self.depth_limited_runs)?;
        }
        match self.truncation {
            Some(reason) => write!(f, " [truncated: {reason}]"),
            None => write!(f, " [exhaustive]"),
        }
    }
}

/// Bounded depth-first exploration of all schedules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Explorer {
    /// Maximum number of maximal runs to visit.
    pub max_runs: usize,
    /// Maximum total actions across the whole search (a wall against
    /// exponential blowup that `max_runs` alone cannot bound, since one
    /// run may be arbitrarily long). `usize::MAX` disables the cap.
    pub max_steps: usize,
    /// Maximum actions per run (a safety net against unbounded systems).
    pub max_depth: usize,
    /// If true, prune states already seen (by [`System::control_key`]);
    /// sound only for state properties, not trace properties.
    pub prune: bool,
    /// Worker threads for [`Explorer::par_for_each_run`]: `1` explores
    /// serially on the calling thread, `0` uses the machine's available
    /// parallelism. Ignored by the always-serial [`Explorer::for_each_run`].
    pub jobs: usize,
    /// Depth at which [`Explorer::par_for_each_run`] splits the DFS
    /// frontier into subtree work items. Larger values produce more,
    /// smaller work items (better load balance, more splitting overhead);
    /// `0` degenerates to a single work item (serial via one worker).
    pub split_depth: usize,
    /// If true, computation-aware drivers (the verify layer, the CLI)
    /// skip the per-run property check when the run's sealed computation
    /// has already been seen under another schedule. Sound for trace
    /// properties — equal computations satisfy equal restrictions — where
    /// [`Explorer::prune`] is not. Runs are still enumerated; only the
    /// check is skipped. Ignored by the raw `for_each_run` family, which
    /// never extracts computations.
    pub dedup_computations: bool,
    /// If true, apply sleep-set partial-order reduction: branches whose
    /// action is in the sleep set (already covered, up to commutations
    /// certified by [`System::independent`], by an earlier sibling) are
    /// not explored at all. Sound for computation-level verdicts — every
    /// sealed computation still gets at least one representative run —
    /// but run counts and representative schedules change, so drivers
    /// comparing raw run sequences should leave it off. A no-op (beyond
    /// bookkeeping) for systems with the conservative default oracle.
    pub reduce: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_runs: 1_000_000,
            max_steps: usize::MAX,
            max_depth: 10_000,
            prune: false,
            jobs: 1,
            split_depth: 3,
            dedup_computations: false,
            reduce: false,
        }
    }
}

impl Explorer {
    /// Creates an explorer with the given run limit and default depth.
    pub fn with_max_runs(max_runs: usize) -> Self {
        Self {
            max_runs,
            ..Self::default()
        }
    }

    /// Visits every maximal run of `sys` (up to the bounds), calling
    /// `visit` with the terminal state and the action sequence that led
    /// there. The visitor may abort exploration early.
    pub fn for_each_run<S: System>(
        &self,
        sys: &S,
        visit: impl FnMut(&S::State, &[S::Action]) -> ControlFlow<()>,
    ) -> ExploreStats {
        self.for_each_run_probed(sys, &NoopProbe, visit)
    }

    /// [`Explorer::for_each_run`] with instrumentation: `probe` receives
    /// `explore.runs` / `explore.steps` counters batched once per maximal
    /// run (never per step), pruning hit/miss counts, the DFS depth
    /// high-water mark, and the truncation cause. With [`NoopProbe`] the
    /// overhead is one virtual call per run.
    pub fn for_each_run_probed<S: System>(
        &self,
        sys: &S,
        probe: &dyn Probe,
        mut visit: impl FnMut(&S::State, &[S::Action]) -> ControlFlow<()>,
    ) -> ExploreStats {
        let mut stats = ExploreStats::default();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut path: Vec<S::Action> = Vec::new();
        let mut flushed_steps = 0usize;
        let mut state = sys.initial();
        let _ = self.dfs(
            sys,
            &mut state,
            &mut path,
            Vec::new(),
            &mut stats,
            &mut seen,
            probe,
            &mut flushed_steps,
            &mut visit,
        );
        if probe.enabled() {
            flush_final(probe, &stats, flushed_steps);
        }
        stats
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carries the whole search state
    fn dfs<S: System>(
        &self,
        sys: &S,
        state: &mut S::State,
        path: &mut Vec<S::Action>,
        sleep: Vec<S::Action>,
        stats: &mut ExploreStats,
        seen: &mut HashSet<u64>,
        probe: &dyn Probe,
        flushed_steps: &mut usize,
        visit: &mut impl FnMut(&S::State, &[S::Action]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if self.prune {
            if let Some(key) = sys.control_key(state) {
                if !seen.insert(key) {
                    stats.prune_hits += 1;
                    return ControlFlow::Continue(());
                }
                stats.prune_misses += 1;
            }
        }
        // The run cap is checked at node entry (every node leads to at
        // least one more maximal run), but the step cap is checked just
        // before each edge application below: a space with exactly
        // `max_runs` runs or `max_steps` steps is exhausted, not
        // truncated. (Under `reduce` a fully-slept node yields no run, so
        // an exact run budget may be flagged as truncated spuriously —
        // the safe direction.)
        if stats.runs >= self.max_runs {
            stats.truncation = Some(TruncationReason::RunLimit);
            return ControlFlow::Break(());
        }
        let actions = sys.enabled(state);
        if actions.is_empty() || path.len() >= self.max_depth {
            if path.len() >= self.max_depth && !actions.is_empty() {
                stats.depth_limited_runs += 1;
                if stats.truncation.is_none() {
                    stats.truncation = Some(TruncationReason::DepthLimit);
                }
            }
            stats.runs += 1;
            if self.reduce {
                stats.por_runs += 1;
            }
            stats.max_depth_seen = stats.max_depth_seen.max(path.len());
            if probe.enabled() {
                // Batched flush: one counter update per maximal run keeps
                // the instrumented hot path within noise of the bare one.
                flush_run(probe, stats, flushed_steps);
            }
            return visit(state, path);
        }
        // Sleep-set partition: actions in the sleep set were already
        // explored (up to independent commutations) by an earlier sibling
        // branch, so skipping them here loses no computation. Incoming
        // entries are filtered to the still-enabled actions first — a
        // slept action that got disabled on the way down can no longer
        // occur and keeping it would only slow the membership tests.
        let (awake, mut cur_sleep) = if self.reduce {
            let cur_sleep: Vec<S::Action> =
                sleep.into_iter().filter(|b| actions.contains(b)).collect();
            let awake: Vec<S::Action> = actions
                .iter()
                .filter(|a| !cur_sleep.contains(a))
                .cloned()
                .collect();
            stats.sleep_skipped += actions.len() - awake.len();
            if awake.is_empty() {
                // Every continuation is covered elsewhere: prune the whole
                // node without counting a run.
                return ControlFlow::Continue(());
            }
            (awake, cur_sleep)
        } else {
            (actions, Vec::new())
        };
        for action in awake {
            if stats.steps >= self.max_steps {
                stats.truncation = Some(TruncationReason::StepLimit);
                return ControlFlow::Break(());
            }
            // The child's sleep set keeps only entries that commute with
            // the action being taken — computed against the *pre-apply*
            // state (the state where both are enabled), before the
            // checkpoint fast path mutates it in place. Each oracle
            // answer is attributed so reduction payoff is explainable
            // per instance.
            let child_sleep: Vec<S::Action> = if self.reduce {
                let mut granted = Vec::with_capacity(cur_sleep.len());
                for b in &cur_sleep {
                    if sys.independent(state, &action, b) {
                        stats.oracle_grants += 1;
                        granted.push(b.clone());
                    } else {
                        stats.oracle_denials += 1;
                    }
                }
                granted
            } else {
                Vec::new()
            };
            let flow = if let Some(cp) = sys.checkpoint(state) {
                // Fast path: mutate the one shared state down the edge and
                // roll it back afterwards — no clone of the accumulated
                // trace.
                sys.apply(state, &action);
                stats.steps += 1;
                path.push(action);
                let flow = self.dfs(
                    sys,
                    state,
                    path,
                    child_sleep,
                    stats,
                    seen,
                    probe,
                    flushed_steps,
                    visit,
                );
                let action = path.pop().expect("path underflow");
                sys.undo(state, cp);
                if self.reduce {
                    cur_sleep.push(action);
                }
                flow
            } else {
                let mut next = state.clone();
                sys.apply(&mut next, &action);
                stats.steps += 1;
                path.push(action);
                let flow = self.dfs(
                    sys,
                    &mut next,
                    path,
                    child_sleep,
                    stats,
                    seen,
                    probe,
                    flushed_steps,
                    visit,
                );
                let action = path.pop().expect("path underflow");
                if self.reduce {
                    cur_sleep.push(action);
                }
                flow
            };
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// Runs one random schedule to completion (or the depth bound),
    /// returning the terminal state and the actions taken.
    pub fn random_run<S: System>(&self, sys: &S, rng: &mut impl Rng) -> (S::State, Vec<S::Action>) {
        self.random_run_probed(sys, rng, &NoopProbe)
    }

    /// [`Explorer::random_run`] with instrumentation: reports the sampled
    /// run through `probe` with the same counter keys as the exhaustive
    /// DFS (`explore.runs`, `explore.steps`, prune totals, the depth
    /// high-water mark, and a depth-limit truncation cause when the run
    /// was cut off with actions still enabled) — so sampled and
    /// exhaustive runs are comparable in JSON reports.
    pub fn random_run_probed<S: System>(
        &self,
        sys: &S,
        rng: &mut impl Rng,
        probe: &dyn Probe,
    ) -> (S::State, Vec<S::Action>) {
        let mut state = sys.initial();
        let mut path = Vec::new();
        let mut depth_limited = false;
        loop {
            let actions = sys.enabled(&state);
            if actions.is_empty() {
                break;
            }
            if path.len() >= self.max_depth {
                depth_limited = true;
                break;
            }
            let action = actions[rng.gen_range(0..actions.len())].clone();
            sys.apply(&mut state, &action);
            path.push(action);
        }
        if probe.enabled() {
            let stats = ExploreStats {
                runs: 1,
                steps: path.len(),
                truncation: depth_limited.then_some(TruncationReason::DepthLimit),
                depth_limited_runs: usize::from(depth_limited),
                max_depth_seen: path.len(),
                ..ExploreStats::default()
            };
            let mut flushed_steps = 0;
            flush_run(probe, &stats, &mut flushed_steps);
            flush_final(probe, &stats, flushed_steps);
        }
        (state, path)
    }

    /// Walks one uniformly random root-to-leaf schedule — a *Knuth
    /// probe* — recording the product of the branching factors (number
    /// of enabled actions) seen along the way. Over uniformly random
    /// descents the expectation of that product is exactly the number of
    /// maximal runs, so feeding `tree_product` from repeated samples
    /// into `gem_obs::KnuthEstimator` estimates the run-tree size
    /// without enumerating it; the terminal state and path feed the
    /// capture-recapture computation-collapse estimator.
    ///
    /// Deterministic in `seed` (a private SplitMix64 stream, independent
    /// of the `rand` shim), and emits nothing through any probe: callers
    /// sample *before* a sweep without perturbing its report.
    pub fn sample_run<S: System>(&self, sys: &S, seed: u64) -> RunSample<S> {
        let mut rng = gem_obs::estimate::SplitMix64::new(seed);
        let mut state = sys.initial();
        let mut path = Vec::new();
        let mut tree_product = 1.0f64;
        let mut depth_limited = false;
        loop {
            let actions = sys.enabled(&state);
            if actions.is_empty() {
                break;
            }
            if path.len() >= self.max_depth {
                depth_limited = true;
                break;
            }
            tree_product *= actions.len() as f64;
            let action = actions[rng.below(actions.len())].clone();
            sys.apply(&mut state, &action);
            path.push(action);
        }
        RunSample {
            state,
            path,
            tree_product,
            depth_limited,
        }
    }
}

/// One sampled schedule ([`Explorer::sample_run`]) with the data the
/// search-space estimators need.
pub struct RunSample<S: System> {
    /// Terminal (or depth-capped) state of the sampled schedule.
    pub state: S::State,
    /// The actions taken, in order.
    pub path: Vec<S::Action>,
    /// Product of the branching factors along the path — one unbiased
    /// Knuth sample of the number of maximal runs.
    pub tree_product: f64,
    /// True if the walk was cut at [`Explorer::max_depth`] with actions
    /// still enabled (the product then underestimates).
    pub depth_limited: bool,
}

/// Per-run probe flush: one `explore.runs` increment and the step delta
/// accumulated since the previous flush. Shared by the serial DFS and the
/// parallel committer so both emit byte-identical counter sequences.
pub(crate) fn flush_run(probe: &dyn Probe, stats: &ExploreStats, flushed_steps: &mut usize) {
    probe.add("explore.runs", 1);
    probe.add("explore.steps", (stats.steps - *flushed_steps) as u64);
    *flushed_steps = stats.steps;
}

/// Final flush: steps of a truncated tail run, pruning totals (emitted
/// even when zero so reports are comparable), the depth high-water mark,
/// and the truncation cause.
pub(crate) fn flush_final(probe: &dyn Probe, stats: &ExploreStats, flushed_steps: usize) {
    probe.add("explore.steps", (stats.steps - flushed_steps) as u64);
    probe.add("explore.prune.hits", stats.prune_hits as u64);
    probe.add("explore.prune.misses", stats.prune_misses as u64);
    probe.add("explore.sleep_skipped", stats.sleep_skipped as u64);
    probe.add("explore.por_runs", stats.por_runs as u64);
    probe.add("explore.oracle.grants", stats.oracle_grants as u64);
    probe.add("explore.oracle.denials", stats.oracle_denials as u64);
    probe.gauge_max("explore.depth_high_water", stats.max_depth_seen as u64);
    if let Some(reason) = stats.truncation {
        probe.add(
            match reason {
                TruncationReason::RunLimit => "explore.truncation.run_limit",
                TruncationReason::StepLimit => "explore.truncation.step_limit",
                TruncationReason::DepthLimit => "explore.truncation.depth_limit",
            },
            1,
        );
    }
}

/// Searches all runs for a deadlock: a terminal state that is not
/// complete. Returns the action sequence leading to the first deadlock
/// found, or `None` if every explored run completes. Honours
/// [`Explorer::jobs`]: with more than one job the parallel explorer is
/// used, and the witness is identical to the serial one (first deadlock
/// in DFS order).
pub fn find_deadlock<S>(sys: &S, explorer: &Explorer) -> Option<Vec<S::Action>>
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut witness = None;
    explorer.par_for_each_run(sys, |state, path| {
        if !sys.is_complete(state) {
            witness = Some(path.to_vec());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    witness
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy system: `n` independent counters each stepping to 2.
    struct Counters {
        n: usize,
        stuck: bool,
    }

    // POR: conservative — exercises the default (no-reduction) oracle.
    impl System for Counters {
        type State = Vec<u8>;
        type Action = usize;
        type Checkpoint = ();

        fn initial(&self) -> Vec<u8> {
            vec![0; self.n]
        }

        fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
            if self.stuck && state.contains(&2) {
                // Contrived deadlock: once anyone reaches 2, nobody moves,
                // but others may be unfinished.
                return Vec::new();
            }
            (0..self.n).filter(|&i| state[i] < 2).collect()
        }

        fn apply(&self, state: &mut Vec<u8>, &i: &usize) {
            state[i] += 1;
        }

        fn is_complete(&self, state: &Vec<u8>) -> bool {
            state.iter().all(|&c| c == 2)
        }

        fn control_key(&self, state: &Vec<u8>) -> Option<u64> {
            let mut k = 0u64;
            for &c in state {
                k = k * 3 + u64::from(c);
            }
            Some(k)
        }
    }

    #[test]
    fn exhaustive_run_count() {
        // 2 counters × 2 steps = interleavings of aabb = C(4,2) = 6.
        let sys = Counters { n: 2, stuck: false };
        let stats = Explorer::default().for_each_run(&sys, |s, path| {
            assert!(sys.is_complete(s));
            assert_eq!(path.len(), 4);
            ControlFlow::Continue(())
        });
        assert_eq!(stats.runs, 6);
        assert!(!stats.truncated());
        assert_eq!(stats.truncation, None);
        assert_eq!(stats.depth_limited_runs, 0);
        assert_eq!(stats.max_depth_seen, 4);
    }

    #[test]
    fn run_limit_truncates() {
        let sys = Counters { n: 3, stuck: false };
        let stats = Explorer::with_max_runs(5).for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(stats.runs, 5);
        assert!(stats.truncated());
        assert_eq!(stats.truncation, Some(TruncationReason::RunLimit));
    }

    #[test]
    fn step_limit_truncates() {
        let sys = Counters { n: 3, stuck: false };
        let stats = Explorer {
            max_steps: 40,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(stats.truncation, Some(TruncationReason::StepLimit));
        assert!(stats.steps >= 40, "{stats}");
        // Full space is 90 runs; the cap must have cut it short.
        assert!(stats.runs < 90);
    }

    #[test]
    fn exact_run_budget_is_exhaustive() {
        // A space with exactly `max_runs` maximal runs is exhausted, not
        // truncated: the bound never bites.
        let sys = Counters { n: 2, stuck: false };
        let stats = Explorer::with_max_runs(6).for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(stats.runs, 6);
        assert_eq!(stats.truncation, None, "{stats}");
        // One fewer and the limit genuinely cuts work off.
        let stats = Explorer::with_max_runs(5).for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(stats.runs, 5);
        assert_eq!(stats.truncation, Some(TruncationReason::RunLimit));
    }

    #[test]
    fn exact_step_budget_is_exhaustive() {
        let sys = Counters { n: 2, stuck: false };
        let total = Explorer::default()
            .for_each_run(&sys, |_, _| ControlFlow::Continue(()))
            .steps;
        let exact = Explorer {
            max_steps: total,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(exact.steps, total);
        assert_eq!(exact.runs, 6);
        assert_eq!(exact.truncation, None, "{exact}");
        let short = Explorer {
            max_steps: total - 1,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(short.steps, total - 1);
        assert_eq!(short.truncation, Some(TruncationReason::StepLimit));
        assert!(short.runs < 6);
    }

    #[test]
    fn pruning_visits_fewer_paths() {
        let sys = Counters { n: 3, stuck: false };
        let full = Explorer::default().for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        let pruned = Explorer {
            prune: true,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert!(pruned.steps < full.steps, "{pruned:?} vs {full:?}");
        assert_eq!(full.runs, 90); // multinomial 6!/(2!2!2!)
    }

    #[test]
    fn deadlock_found() {
        let sys = Counters { n: 2, stuck: true };
        let witness = find_deadlock(&sys, &Explorer::default());
        assert!(witness.is_some());
        let sys_ok = Counters { n: 2, stuck: false };
        assert!(find_deadlock(&sys_ok, &Explorer::default()).is_none());
    }

    #[test]
    fn random_run_completes() {
        use rand::SeedableRng;
        let sys = Counters { n: 2, stuck: false };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (state, path) = Explorer::default().random_run(&sys, &mut rng);
        assert!(sys.is_complete(&state));
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn depth_limit_flags() {
        let sys = Counters { n: 2, stuck: false };
        let stats = Explorer {
            max_depth: 2,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert!(stats.depth_limited_runs > 0);
        assert_eq!(stats.truncation, Some(TruncationReason::DepthLimit));
        assert_eq!(stats.max_depth_seen, 2);
    }

    #[test]
    fn probed_exploration_matches_stats() {
        use gem_obs::StatsProbe;
        let sys = Counters { n: 3, stuck: false };
        let probe = StatsProbe::new();
        let stats = Explorer {
            prune: true,
            ..Explorer::default()
        }
        .for_each_run_probed(&sys, &probe, |_, _| ControlFlow::Continue(()));
        let report = probe.report();
        assert_eq!(report.counters["explore.runs"], stats.runs as u64);
        assert_eq!(report.counters["explore.steps"], stats.steps as u64);
        assert_eq!(
            report.counters["explore.prune.hits"],
            stats.prune_hits as u64
        );
        assert_eq!(
            report.counters["explore.prune.misses"],
            stats.prune_misses as u64
        );
        assert_eq!(
            report.gauges["explore.depth_high_water"],
            stats.max_depth_seen as u64
        );
        assert!(!report
            .counters
            .keys()
            .any(|k| k.starts_with("explore.truncation")));
    }

    #[test]
    fn probed_truncation_cause_reported() {
        use gem_obs::StatsProbe;
        let sys = Counters { n: 3, stuck: false };
        let probe = StatsProbe::new();
        Explorer::with_max_runs(5)
            .for_each_run_probed(&sys, &probe, |_, _| ControlFlow::Continue(()));
        assert_eq!(probe.report().counters["explore.truncation.run_limit"], 1);
    }

    #[test]
    fn stats_display_is_readable() {
        let sys = Counters { n: 2, stuck: false };
        let stats = Explorer::default().for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(
            stats.to_string(),
            format!(
                "6 run(s), {} step(s), max depth 4 [exhaustive]",
                stats.steps
            )
        );
        let truncated =
            Explorer::with_max_runs(2).for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert!(truncated.to_string().ends_with("[truncated: run limit]"));
    }

    #[test]
    fn pruned_search_still_finds_deadlock() {
        // Pruning is sound for state properties: the deadlock is found
        // with fewer steps.
        let sys = Counters { n: 3, stuck: true };
        let pruned = Explorer {
            prune: true,
            ..Explorer::default()
        };
        assert!(find_deadlock(&sys, &pruned).is_some());
        let full_steps = Explorer::default()
            .for_each_run(&sys, |_, _| ControlFlow::Continue(()))
            .steps;
        let pruned_steps = pruned
            .for_each_run(&sys, |_, _| ControlFlow::Continue(()))
            .steps;
        assert!(pruned_steps <= full_steps);
    }

    /// `Counters` with the apply/undo fast path enabled: the checkpoint
    /// snapshots the whole (tiny) state, so the undo DFS must enumerate
    /// exactly what the clone-per-edge DFS does.
    struct UndoCounters(Counters);

    // POR: conservative — exercises the default (no-reduction) oracle.
    impl System for UndoCounters {
        type State = Vec<u8>;
        type Action = usize;
        type Checkpoint = Vec<u8>;

        fn initial(&self) -> Vec<u8> {
            self.0.initial()
        }
        fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
            self.0.enabled(state)
        }
        fn apply(&self, state: &mut Vec<u8>, action: &usize) {
            self.0.apply(state, action);
        }
        fn is_complete(&self, state: &Vec<u8>) -> bool {
            self.0.is_complete(state)
        }
        fn control_key(&self, state: &Vec<u8>) -> Option<u64> {
            self.0.control_key(state)
        }
        fn checkpoint(&self, state: &Vec<u8>) -> Option<Vec<u8>> {
            Some(state.clone())
        }
        fn undo(&self, state: &mut Vec<u8>, checkpoint: Vec<u8>) {
            *state = checkpoint;
        }
    }

    #[test]
    fn undo_fast_path_enumerates_identically() {
        let plain = Counters { n: 3, stuck: false };
        let undo = UndoCounters(Counters { n: 3, stuck: false });
        for explorer in [
            Explorer::default(),
            Explorer::with_max_runs(7),
            Explorer {
                max_steps: 40,
                ..Explorer::default()
            },
            Explorer {
                max_depth: 3,
                ..Explorer::default()
            },
            Explorer {
                prune: true,
                ..Explorer::default()
            },
        ] {
            let mut a = Vec::new();
            let sa = explorer.for_each_run(&plain, |state, path| {
                a.push((state.clone(), path.to_vec()));
                ControlFlow::Continue(())
            });
            let mut b = Vec::new();
            let sb = explorer.for_each_run(&undo, |state, path| {
                b.push((state.clone(), path.to_vec()));
                ControlFlow::Continue(())
            });
            assert_eq!(a, b, "{explorer:?}");
            assert_eq!(sa, sb, "{explorer:?}");
        }
    }

    #[test]
    fn random_run_probed_reports_like_dfs() {
        use gem_obs::StatsProbe;
        use rand::SeedableRng;
        let sys = Counters { n: 2, stuck: false };
        let probe = StatsProbe::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (_, path) = Explorer::default().random_run_probed(&sys, &mut rng, &probe);
        let report = probe.report();
        assert_eq!(report.counters["explore.runs"], 1);
        assert_eq!(report.counters["explore.steps"], path.len() as u64);
        assert_eq!(report.counters["explore.prune.hits"], 0);
        assert_eq!(report.counters["explore.prune.misses"], 0);
        assert_eq!(report.gauges["explore.depth_high_water"], path.len() as u64);
        // A depth-capped sample is flagged exactly like a depth-limited run.
        let probe = StatsProbe::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let capped = Explorer {
            max_depth: 1,
            ..Explorer::default()
        };
        let (_, path) = capped.random_run_probed(&sys, &mut rng, &probe);
        assert_eq!(path.len(), 1);
        let report = probe.report();
        assert_eq!(report.counters["explore.truncation.depth_limit"], 1);
    }

    /// `Counters` with a full independence oracle: distinct counters
    /// never interact, so every interleaving of a complete run belongs to
    /// one Mazurkiewicz trace.
    struct PorCounters(Counters);

    impl System for PorCounters {
        type State = Vec<u8>;
        type Action = usize;
        type Checkpoint = ();

        fn initial(&self) -> Vec<u8> {
            self.0.initial()
        }
        fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
            self.0.enabled(state)
        }
        fn apply(&self, state: &mut Vec<u8>, action: &usize) {
            self.0.apply(state, action);
        }
        fn is_complete(&self, state: &Vec<u8>) -> bool {
            self.0.is_complete(state)
        }
        fn independent(&self, _state: &Vec<u8>, a: &usize, b: &usize) -> bool {
            // Steps of distinct counters commute; two steps of the same
            // counter are the same action (each index is enabled at most
            // once per state) and never reach here.
            a != b
        }
    }

    #[test]
    fn sleep_sets_explore_one_run_per_trace() {
        // All actions commute, so the whole schedule space is a single
        // trace: sleep sets must collapse it to exactly one run.
        for n in [2, 3] {
            let sys = PorCounters(Counters { n, stuck: false });
            let full = Explorer::default().for_each_run(&sys, |_, _| ControlFlow::Continue(()));
            let reduced = Explorer {
                reduce: true,
                ..Explorer::default()
            }
            .for_each_run(&sys, |s, path| {
                assert!(sys.is_complete(s));
                assert_eq!(path.len(), 2 * n);
                ControlFlow::Continue(())
            });
            assert_eq!(reduced.runs, 1, "n={n}");
            assert_eq!(reduced.por_runs, 1, "n={n}");
            assert!(reduced.sleep_skipped > 0, "n={n}");
            assert!(reduced.steps < full.steps, "n={n}");
            assert_eq!(reduced.truncation, None, "n={n}");
            assert_eq!(full.por_runs, 0);
            assert_eq!(full.sleep_skipped, 0);
            // A fully-independent system grants every oracle query.
            assert!(reduced.oracle_grants > 0, "n={n}");
            assert_eq!(reduced.oracle_denials, 0, "n={n}");
            assert_eq!(full.oracle_grants, 0);
        }
    }

    #[test]
    fn sample_run_is_deterministic_and_estimates_run_count() {
        let sys = Counters { n: 2, stuck: false };
        let explorer = Explorer::default();
        // Determinism in the seed.
        let a = explorer.sample_run(&sys, 7);
        let b = explorer.sample_run(&sys, 7);
        assert_eq!(a.path, b.path);
        assert_eq!(a.tree_product, b.tree_product);
        assert!(!a.depth_limited);
        assert!(sys.is_complete(&a.state));
        // The mean branching product over many probes approaches the
        // true run count (6 for two 2-step counters).
        let mut est = gem_obs::KnuthEstimator::new();
        for seed in 0..500 {
            est.record(explorer.sample_run(&sys, seed).tree_product);
        }
        let mean = est.estimate().unwrap();
        assert!((5.0..=7.0).contains(&mean), "mean {mean} for true 6");
    }

    #[test]
    fn sample_run_respects_depth_cap() {
        let sys = Counters { n: 2, stuck: false };
        let capped = Explorer {
            max_depth: 1,
            ..Explorer::default()
        };
        let s = capped.sample_run(&sys, 1);
        assert_eq!(s.path.len(), 1);
        assert!(s.depth_limited);
    }

    #[test]
    fn reduce_with_conservative_oracle_is_identity() {
        // A system with the default oracle claims nothing commutes, so
        // reduction must visit exactly the full run sequence.
        let sys = Counters { n: 2, stuck: false };
        let mut full_runs = Vec::new();
        let full = Explorer::default().for_each_run(&sys, |s, p| {
            full_runs.push((s.clone(), p.to_vec()));
            ControlFlow::Continue(())
        });
        let mut reduced_runs = Vec::new();
        let reduced = Explorer {
            reduce: true,
            ..Explorer::default()
        }
        .for_each_run(&sys, |s, p| {
            reduced_runs.push((s.clone(), p.to_vec()));
            ControlFlow::Continue(())
        });
        assert_eq!(full_runs, reduced_runs);
        assert_eq!(reduced.runs, full.runs);
        assert_eq!(reduced.sleep_skipped, 0);
        assert_eq!(reduced.por_runs, full.runs);
    }

    #[test]
    fn reduced_runs_are_a_subsequence_of_the_full_sweep() {
        // Sleep sets only ever skip branches, so the reduced run list is
        // a subsequence of the full DFS run list (same relative order).
        // Use the deadlocking variant so distinct traces exist.
        let sys = PorCounters(Counters { n: 2, stuck: true });
        let mut full = Vec::new();
        Explorer::default().for_each_run(&sys, |_, p| {
            full.push(p.to_vec());
            ControlFlow::Continue(())
        });
        let mut reduced = Vec::new();
        Explorer {
            reduce: true,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, p| {
            reduced.push(p.to_vec());
            ControlFlow::Continue(())
        });
        assert!(!reduced.is_empty());
        assert!(reduced.len() < full.len());
        let mut it = full.iter();
        for r in &reduced {
            assert!(it.any(|f| f == r), "{r:?} missing from full sweep");
        }
    }

    #[test]
    fn probed_reduction_reports_sleep_counters() {
        use gem_obs::StatsProbe;
        let sys = PorCounters(Counters { n: 3, stuck: false });
        let probe = StatsProbe::new();
        let stats = Explorer {
            reduce: true,
            ..Explorer::default()
        }
        .for_each_run_probed(&sys, &probe, |_, _| ControlFlow::Continue(()));
        let report = probe.report();
        assert_eq!(
            report.counters["explore.sleep_skipped"],
            stats.sleep_skipped as u64
        );
        assert_eq!(report.counters["explore.por_runs"], stats.por_runs as u64);
        assert_eq!(report.counters["explore.runs"], stats.runs as u64);
    }

    #[test]
    fn por_stats_display_mentions_reduction() {
        let sys = PorCounters(Counters { n: 2, stuck: false });
        let stats = Explorer {
            reduce: true,
            ..Explorer::default()
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        let text = stats.to_string();
        assert!(text.contains("POR: 1 representative(s)"), "{text}");
    }

    #[test]
    fn early_break_stops_search() {
        let sys = Counters { n: 3, stuck: false };
        let mut count = 0;
        Explorer::default().for_each_run(&sys, |_, _| {
            count += 1;
            if count == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 3);
    }
}
