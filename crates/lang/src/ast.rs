//! A small shared expression language for the concurrency substrates.
//!
//! The Monitor, CSP, and ADA substrates all need side-effect-free
//! expressions over process/monitor variables (guards, assigned values,
//! message contents). [`Expr`] is that common core; statements are
//! substrate-specific because each primitive has its own control
//! constructs (wait/signal, guarded communication, accept/select).

use std::collections::BTreeMap;
use std::fmt;

use gem_core::Value;

/// Errors raised while evaluating an expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// A variable was read before being declared/assigned.
    UndefinedVariable(String),
    /// An operator was applied to operands of the wrong type.
    TypeError {
        /// The operator applied.
        op: String,
        /// Display of the offending operand.
        operand: String,
    },
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UndefinedVariable(v) => write!(f, "undefined variable {v:?}"),
            RuntimeError::TypeError { op, operand } => {
                write!(f, "type error: {op} applied to {operand}")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating).
    Div,
    /// Integer remainder.
    Rem,
    /// Equality (any values).
    Eq,
    /// Inequality (any values).
    Ne,
    /// Less-than (integers).
    Lt,
    /// Less-or-equal (integers).
    Le,
    /// Greater-than (integers).
    Gt,
    /// Greater-or-equal (integers).
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// A side-effect-free expression over named variables.
///
/// # Examples
///
/// ```
/// use gem_lang::{Expr, VarStore};
/// use gem_core::Value;
/// let mut env = VarStore::new();
/// env.set("readernum", Value::Int(-1));
/// let guard = Expr::var("readernum").lt(Expr::int(0));
/// assert_eq!(guard.eval(&env).unwrap(), Value::Bool(true));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A variable reference.
    Var(String),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Integer negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal.
    pub fn int(i: i64) -> Self {
        Expr::Lit(Value::Int(i))
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> Self {
        Expr::Lit(Value::Bool(b))
    }

    /// String literal.
    pub fn str(s: impl Into<String>) -> Self {
        Expr::Lit(Value::Str(s.into()))
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Self {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Self {
        Expr::bin(BinOp::Add, self, other)
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Self {
        Expr::bin(BinOp::Sub, self, other)
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Self {
        Expr::bin(BinOp::Mul, self, other)
    }

    /// `self / other` (truncating).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Self {
        Expr::bin(BinOp::Div, self, other)
    }

    /// `self % other`.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, other: Expr) -> Self {
        Expr::bin(BinOp::Rem, self, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Self {
        Expr::bin(BinOp::Eq, self, other)
    }

    /// `self ≠ other`.
    pub fn ne(self, other: Expr) -> Self {
        Expr::bin(BinOp::Ne, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Self {
        Expr::bin(BinOp::Lt, self, other)
    }

    /// `self ≤ other`.
    pub fn le(self, other: Expr) -> Self {
        Expr::bin(BinOp::Le, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Self {
        Expr::bin(BinOp::Gt, self, other)
    }

    /// `self ≥ other`.
    pub fn ge(self, other: Expr) -> Self {
        Expr::bin(BinOp::Ge, self, other)
    }

    /// Boolean `self ∧ other`.
    pub fn and(self, other: Expr) -> Self {
        Expr::bin(BinOp::And, self, other)
    }

    /// Boolean `self ∨ other`.
    pub fn or(self, other: Expr) -> Self {
        Expr::bin(BinOp::Or, self, other)
    }

    /// Boolean `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    /// Integer `-self`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Self {
        Expr::Neg(Box::new(self))
    }

    /// Collects every variable name the expression reads into `out`.
    /// Used by the substrate independence oracles to compute conservative
    /// read footprints for partial-order reduction.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(name) => {
                out.insert(name.clone());
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Evaluates the expression in `env`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] for undefined variables, type mismatches,
    /// or division by zero.
    pub fn eval(&self, env: &VarStore) -> Result<Value, RuntimeError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone())),
            Expr::Not(e) => match e.eval(env)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                v => Err(RuntimeError::TypeError {
                    op: "not".into(),
                    operand: v.to_string(),
                }),
            },
            Expr::Neg(e) => match e.eval(env)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                v => Err(RuntimeError::TypeError {
                    op: "neg".into(),
                    operand: v.to_string(),
                }),
            },
            Expr::Bin(op, a, b) => {
                let (va, vb) = (a.eval(env)?, b.eval(env)?);
                apply_bin(*op, va, vb)
            }
        }
    }
}

pub(crate) fn apply_bin(op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    let type_err = |a: &Value| {
        Err(RuntimeError::TypeError {
            op: op.to_string(),
            operand: a.to_string(),
        })
    };
    match op {
        Eq => Ok(Value::Bool(a == b)),
        Ne => Ok(Value::Bool(a != b)),
        Add | Sub | Mul | Div | Rem | Lt | Le | Gt | Ge => {
            let (Some(x), Some(y)) = (a.as_int(), b.as_int()) else {
                return type_err(&a);
            };
            match op {
                Add => Ok(Value::Int(x + y)),
                Sub => Ok(Value::Int(x - y)),
                Mul => Ok(Value::Int(x * y)),
                Div => {
                    if y == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(Value::Int(x / y))
                    }
                }
                Rem => {
                    if y == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(Value::Int(x % y))
                    }
                }
                Lt => Ok(Value::Bool(x < y)),
                Le => Ok(Value::Bool(x <= y)),
                Gt => Ok(Value::Bool(x > y)),
                Ge => Ok(Value::Bool(x >= y)),
                _ => unreachable!(),
            }
        }
        And | Or => {
            let (Some(x), Some(y)) = (a.as_bool(), b.as_bool()) else {
                return type_err(&a);
            };
            Ok(Value::Bool(if op == And { x && y } else { x || y }))
        }
    }
}

/// A mutable variable environment.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VarStore {
    vars: BTreeMap<String, Value>,
}

impl VarStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Writes a variable (declaring it if new).
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables are defined.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl FromIterator<(String, Value)> for VarStore {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Self {
            vars: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for VarStore {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.vars.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> VarStore {
        let mut e = VarStore::new();
        e.set("x", Value::Int(3));
        e.set("flag", Value::Bool(true));
        e
    }

    #[test]
    fn arithmetic() {
        let e = env();
        assert_eq!(
            Expr::var("x").add(Expr::int(4)).eval(&e).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            Expr::var("x")
                .sub(Expr::int(1))
                .mul(Expr::int(2))
                .eval(&e)
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::int(7).div(Expr::int(2)).eval(&e).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Expr::int(7).rem(Expr::int(2)).eval(&e).unwrap(),
            Value::Int(1)
        );
        assert_eq!(Expr::var("x").neg().eval(&e).unwrap(), Value::Int(-3));
    }

    #[test]
    fn comparisons_and_boolean() {
        let e = env();
        assert_eq!(
            Expr::var("x").lt(Expr::int(4)).eval(&e).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::var("x").ge(Expr::int(4)).eval(&e).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::var("flag")
                .and(Expr::var("x").eq(Expr::int(3)))
                .eval(&e)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::bool(false).or(Expr::var("flag")).eval(&e).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::var("flag").not().eval(&e).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::str("a").ne(Expr::str("b")).eval(&e).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn errors() {
        let e = env();
        assert!(matches!(
            Expr::var("missing").eval(&e),
            Err(RuntimeError::UndefinedVariable(_))
        ));
        assert!(matches!(
            Expr::var("flag").add(Expr::int(1)).eval(&e),
            Err(RuntimeError::TypeError { .. })
        ));
        assert!(matches!(
            Expr::int(1).div(Expr::int(0)).eval(&e),
            Err(RuntimeError::DivisionByZero)
        ));
        assert!(matches!(
            Expr::int(1).rem(Expr::int(0)).eval(&e),
            Err(RuntimeError::DivisionByZero)
        ));
        assert!(matches!(
            Expr::int(1).not().eval(&e),
            Err(RuntimeError::TypeError { .. })
        ));
        assert!(matches!(
            Expr::bool(true).neg().eval(&e),
            Err(RuntimeError::TypeError { .. })
        ));
    }

    #[test]
    fn var_store_basics() {
        let mut e = VarStore::new();
        assert!(e.is_empty());
        e.set("a", Value::Int(1));
        e.set("a", Value::Int(2));
        assert_eq!(e.len(), 1);
        assert_eq!(e.get("a"), Some(&Value::Int(2)));
        let collected: VarStore = vec![("b".to_owned(), Value::Unit)].into_iter().collect();
        assert_eq!(collected.get("b"), Some(&Value::Unit));
        let mut ext = VarStore::new();
        ext.extend(collected.iter().map(|(n, v)| (n.to_owned(), v.clone())));
        assert_eq!(ext.len(), 1);
    }

    #[test]
    fn runtime_error_display() {
        assert!(RuntimeError::UndefinedVariable("x".into())
            .to_string()
            .contains("undefined"));
        assert!(RuntimeError::DivisionByZero.to_string().contains("zero"));
    }
}
