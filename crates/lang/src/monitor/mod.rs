//! The Monitor concurrency primitive (Hoare/Brinch-Hansen style), one of
//! the three language substrates the paper describes in GEM (§9).
//!
//! * [`MonitorDef`]/[`MonitorProgram`] — program text (entries, conditions,
//!   variables, user process scripts).
//! * [`MonitorSystem`] — executes programs under an exploring scheduler,
//!   emitting GEM computations over the Monitor group structure
//!   (`PORTS(lock.Req)`).
//! * [`monitor_restrictions`]/[`entries_sequential`] — the GEM description
//!   of the primitive itself, checkable against generated computations.

mod def;
mod gemspec;
mod sim;

pub use def::{
    readers_writers_monitor, EntryDef, MonitorDef, MonitorProgram, ProcessDef, ScriptStep,
    SignalSemantics, Stmt,
};
pub use gemspec::{entries_sequential, monitor_restrictions};
pub use sim::{MonitorAction, MonitorState, MonitorSystem};
