//! Monitor program definitions: a Hoare-style monitor (lock, entries,
//! conditions, variables, initialization) plus the user processes that
//! call it.
//!
//! The paper's §9 GEM description of the Monitor primitive is
//! `Monitor = GROUP TYPE(lock, {entry}, {cond}, {init}, {var})
//! PORTS(lock.Req)`; [`MonitorProgram`] is the concrete program text this
//! substrate executes and translates into computations over exactly that
//! group structure.

use gem_core::Value;

use crate::ast::Expr;

/// A statement of monitor entry code.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `var := expr` on a monitor variable.
    Assign(String, Expr),
    /// `IF cond THEN … ELSE …`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `WHILE cond DO …`.
    While(Expr, Vec<Stmt>),
    /// `WAIT(condition)` — release the monitor and join the condition
    /// queue.
    Wait(String),
    /// `SIGNAL(condition)` — Hoare semantics: if a process waits on the
    /// condition, the monitor passes to it immediately and the signaller
    /// waits on the urgent stack; otherwise a no-op.
    Signal(String),
    /// `IF queue(condition) THEN … ELSE …` — branch on whether any
    /// process waits on the condition (used by the paper's `EndWrite`).
    IfQueue(String, Vec<Stmt>, Vec<Stmt>),
}

impl Stmt {
    /// Shorthand for [`Stmt::Assign`].
    pub fn assign(var: impl Into<String>, expr: Expr) -> Self {
        Stmt::Assign(var.into(), expr)
    }

    /// Shorthand for a one-armed [`Stmt::If`].
    pub fn if_then(cond: Expr, then_branch: Vec<Stmt>) -> Self {
        Stmt::If(cond, then_branch, Vec::new())
    }

    /// Shorthand for [`Stmt::Wait`].
    pub fn wait(cond: impl Into<String>) -> Self {
        Stmt::Wait(cond.into())
    }

    /// Shorthand for [`Stmt::Signal`].
    pub fn signal(cond: impl Into<String>) -> Self {
        Stmt::Signal(cond.into())
    }
}

/// One monitor entry procedure.
#[derive(Clone, PartialEq, Debug)]
pub struct EntryDef {
    /// Entry name, e.g. `"StartRead"`.
    pub name: String,
    /// Formal parameter names, bound per call.
    pub params: Vec<String>,
    /// The entry body.
    pub body: Vec<Stmt>,
}

/// A monitor definition.
#[derive(Clone, PartialEq, Debug)]
pub struct MonitorDef {
    /// Monitor name.
    pub name: String,
    /// Monitor variables with their initial values (the initialization
    /// code of the paper).
    pub vars: Vec<(String, Value)>,
    /// Condition variable names.
    pub conditions: Vec<String>,
    /// Entry procedures.
    pub entries: Vec<EntryDef>,
}

impl MonitorDef {
    /// Creates an empty monitor.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            vars: Vec::new(),
            conditions: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Declares a monitor variable with an initial value.
    pub fn var(mut self, name: impl Into<String>, init: impl Into<Value>) -> Self {
        self.vars.push((name.into(), init.into()));
        self
    }

    /// Declares a condition variable.
    pub fn condition(mut self, name: impl Into<String>) -> Self {
        self.conditions.push(name.into());
        self
    }

    /// Adds an entry procedure.
    pub fn entry(mut self, name: impl Into<String>, params: &[&str], body: Vec<Stmt>) -> Self {
        self.entries.push(EntryDef {
            name: name.into(),
            params: params.iter().map(|s| (*s).to_owned()).collect(),
            body,
        });
        self
    }

    /// Finds an entry by name.
    pub fn entry_index(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }
}

/// One step of a user process script.
#[derive(Clone, PartialEq, Debug)]
pub enum ScriptStep {
    /// Call a monitor entry with argument values.
    Call {
        /// Entry name.
        entry: String,
        /// Argument values, positional.
        args: Vec<Value>,
    },
    /// Emit a local event at the user's own element (e.g. the
    /// Readers/Writers `Read`/`FinishRead` events).
    Event {
        /// Event class name (must be among the system's user classes).
        class: String,
        /// Event parameters.
        params: Vec<Value>,
    },
    /// Read a shared (non-monitor) variable: a `Getval` event at that
    /// variable's element.
    ReadShared {
        /// Shared variable name.
        var: String,
    },
    /// Write a shared variable: an `Assign` event at its element.
    WriteShared {
        /// Shared variable name.
        var: String,
        /// Value to write (evaluated over the shared/monitor variables).
        value: Expr,
    },
}

/// A user process: a name and a sequential script.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcessDef {
    /// Process name (also its GEM element name).
    pub name: String,
    /// The sequential script.
    pub script: Vec<ScriptStep>,
}

impl ProcessDef {
    /// Creates a process with the given script.
    pub fn new(name: impl Into<String>, script: Vec<ScriptStep>) -> Self {
        Self {
            name: name.into(),
            script,
        }
    }
}

/// The signalling discipline of the monitor (the classic Hoare/Mesa
/// split).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SignalSemantics {
    /// Hoare / signal-urgent: `SIGNAL` on a non-empty condition passes
    /// the monitor to the first waiter immediately; the signaller parks
    /// and resumes before any new entry. The signalled condition is
    /// guaranteed still to hold, so `IF … THEN WAIT` suffices — this is
    /// what §9's proof assumes.
    #[default]
    Hoare,
    /// Mesa / signal-and-continue: `SIGNAL` merely makes the first waiter
    /// *eligible to re-acquire* the monitor; the signaller keeps running,
    /// and new callers may beat the waiter to the lock, so the signalled
    /// condition may no longer hold when the waiter resumes. Correct Mesa
    /// code re-checks with `WHILE … DO WAIT`.
    Mesa,
}

/// A complete monitor program: the monitor, the user processes, shared
/// variables accessed outside the monitor, and any extra user event
/// classes the scripts emit.
#[derive(Clone, PartialEq, Debug)]
pub struct MonitorProgram {
    /// The monitor definition.
    pub monitor: MonitorDef,
    /// The user processes.
    pub processes: Vec<ProcessDef>,
    /// Shared variables (outside the monitor) with initial values.
    pub shared_vars: Vec<(String, Value)>,
    /// Extra event classes at user elements: `(name, param names)`.
    pub user_classes: Vec<(String, Vec<String>)>,
    /// The signalling discipline (default [`SignalSemantics::Hoare`]).
    pub semantics: SignalSemantics,
}

impl MonitorProgram {
    /// Creates a program with no processes.
    pub fn new(monitor: MonitorDef) -> Self {
        Self {
            monitor,
            processes: Vec::new(),
            shared_vars: Vec::new(),
            user_classes: Vec::new(),
            semantics: SignalSemantics::Hoare,
        }
    }

    /// Selects the signalling discipline.
    pub fn with_semantics(mut self, semantics: SignalSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Adds a user process.
    pub fn process(mut self, p: ProcessDef) -> Self {
        self.processes.push(p);
        self
    }

    /// Declares a shared variable.
    pub fn shared_var(mut self, name: impl Into<String>, init: impl Into<Value>) -> Self {
        self.shared_vars.push((name.into(), init.into()));
        self
    }

    /// Declares a user event class.
    pub fn user_class(mut self, name: impl Into<String>, params: &[&str]) -> Self {
        self.user_classes.push((
            name.into(),
            params.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }
}

/// The Readers-Priority Readers/Writers monitor of §9, verbatim:
///
/// ```text
/// readqueue, writequeue: CONDITION;
/// readernum: INTEGER;  /* positive if reading, -1 if writing */
/// ENTRY StartRead: IF readernum < 0 THEN WAIT(readqueue);
///                  readernum := readernum + 1; SIGNAL(readqueue);
/// ENTRY EndRead:   readernum := readernum - 1;
///                  IF readernum = 0 THEN SIGNAL(writequeue);
/// ENTRY StartWrite: IF readernum ≠ 0 THEN WAIT(writequeue);
///                   readernum := -1;
/// ENTRY EndWrite:  readernum := 0;
///                  IF queue(readqueue) THEN SIGNAL(readqueue)
///                  ELSE SIGNAL(writequeue);
/// init: readernum := 0
/// ```
pub fn readers_writers_monitor() -> MonitorDef {
    let readernum = || Expr::var("readernum");
    MonitorDef::new("ReadersWriters")
        .var("readernum", 0i64)
        .condition("readqueue")
        .condition("writequeue")
        .entry(
            "StartRead",
            &[],
            vec![
                Stmt::if_then(readernum().lt(Expr::int(0)), vec![Stmt::wait("readqueue")]),
                Stmt::assign("readernum", readernum().add(Expr::int(1))),
                Stmt::signal("readqueue"),
            ],
        )
        .entry(
            "EndRead",
            &[],
            vec![
                Stmt::assign("readernum", readernum().sub(Expr::int(1))),
                Stmt::if_then(
                    readernum().eq(Expr::int(0)),
                    vec![Stmt::signal("writequeue")],
                ),
            ],
        )
        .entry(
            "StartWrite",
            &[],
            vec![
                Stmt::if_then(readernum().ne(Expr::int(0)), vec![Stmt::wait("writequeue")]),
                Stmt::assign("readernum", Expr::int(-1)),
            ],
        )
        .entry(
            "EndWrite",
            &[],
            vec![
                Stmt::assign("readernum", Expr::int(0)),
                Stmt::IfQueue(
                    "readqueue".into(),
                    vec![Stmt::signal("readqueue")],
                    vec![Stmt::signal("writequeue")],
                ),
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate() {
        let m = MonitorDef::new("M").var("x", 0i64).condition("c").entry(
            "E",
            &["p"],
            vec![Stmt::assign("x", Expr::var("p"))],
        );
        assert_eq!(m.vars.len(), 1);
        assert_eq!(m.conditions, vec!["c"]);
        assert_eq!(m.entry_index("E"), Some(0));
        assert_eq!(m.entry_index("F"), None);
        assert_eq!(m.entries[0].params, vec!["p"]);
    }

    #[test]
    fn rw_monitor_shape() {
        let m = readers_writers_monitor();
        assert_eq!(m.entries.len(), 4);
        assert_eq!(m.conditions.len(), 2);
        assert!(m.entry_index("StartRead").is_some());
        assert!(m.entry_index("EndWrite").is_some());
    }

    #[test]
    fn program_builder() {
        let prog = MonitorProgram::new(readers_writers_monitor())
            .shared_var("data", 0i64)
            .user_class("Read", &[])
            .process(ProcessDef::new(
                "r0",
                vec![
                    ScriptStep::Event {
                        class: "Read".into(),
                        params: vec![],
                    },
                    ScriptStep::Call {
                        entry: "StartRead".into(),
                        args: vec![],
                    },
                    ScriptStep::ReadShared { var: "data".into() },
                    ScriptStep::Call {
                        entry: "EndRead".into(),
                        args: vec![],
                    },
                ],
            ));
        assert_eq!(prog.processes.len(), 1);
        assert_eq!(prog.shared_vars.len(), 1);
        assert_eq!(prog.user_classes.len(), 1);
    }
}
