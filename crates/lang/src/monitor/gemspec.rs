//! The GEM description of the Monitor primitive (§9) as checkable
//! restrictions.
//!
//! The paper sketches `Monitor = GROUP TYPE(lock, {entry}, {cond}, init,
//! {var}) PORTS(lock.Req)` with "restrictions describing how a monitor
//! functions — rules for waiting and signalling, initialization, etc."
//! [`monitor_restrictions`] produces those rules for a concrete
//! [`MonitorSystem`]:
//!
//! 1. **Signal/Resume pairing** — the release of a wait must be enabled by
//!    exactly one `Signal`, and each `Signal` can enable only one resume
//!    (§8.2's prerequisite example).
//! 2. **Wait/Resume pairing** — each resume continues exactly one wait.
//! 3. **Lock discipline** — every `Acquire` is preceded (temporally) by
//!    the initialization, and acquire events are totally ordered (they all
//!    occur at the lock element, so this is the element-order legality
//!    restriction; stated here as documentation).
//!
//! [`entries_sequential`] checks the property the paper reports proving of
//! the Monitor: *sequential execution of monitor entries* — all events at
//! monitor-internal elements are totally ordered by the temporal order.

use gem_core::Computation;
use gem_logic::{EventSel, Formula};

use crate::monitor::sim::MonitorSystem;

/// Named restriction formulas describing how a monitor functions, for the
/// given compiled system.
pub fn monitor_restrictions(sys: &MonitorSystem) -> Vec<(String, Formula)> {
    let mut out = Vec::new();
    for cond in &sys.program().monitor.conditions {
        let el = sys.cond_element(cond);
        let signal = EventSel::of_class(sys.class("Signal")).at(el);
        let wait = EventSel::of_class(sys.class("Wait")).at(el);
        let resume = EventSel::of_class(sys.class("Resume")).at(el);
        out.push((
            format!("{cond}.signal-enables-resume"),
            gem_spec::prerequisite(&signal, &resume),
        ));
        out.push((
            format!("{cond}.wait-enables-resume"),
            gem_spec::prerequisite(&wait, &resume),
        ));
    }
    // Initialization precedes every acquisition of the lock.
    let init = EventSel::of_class(sys.class("Init"));
    let acquire = EventSel::of_class(sys.class("Acquire")).at(sys.lock_element());
    out.push((
        "init-before-any-entry".into(),
        Formula::forall(
            "i",
            init,
            Formula::forall("a", acquire, Formula::precedes("i", "a")),
        ),
    ));
    out
}

/// The paper's proved Monitor property: all events occurring in monitor
/// entries, conditions, variables, or initialization code are totally
/// ordered by the temporal order.
///
/// Lock `Req` events are excluded: requests are made *from outside* the
/// monitor and genuinely overlap running entries; the sequentiality claim
/// is about the code executed under the lock.
///
/// Returns `true` if every pair of such events of `computation` is
/// ordered.
pub fn entries_sequential(sys: &MonitorSystem, computation: &Computation) -> bool {
    let s = computation.structure();
    let group = s
        .group(&sys.program().monitor.name)
        .expect("monitor group exists");
    let req = sys.class("Req");
    let internal: Vec<_> = computation
        .events()
        .iter()
        .filter(|e| e.class() != req && s.contained(e.element().into(), group))
        .map(|e| e.id())
        .collect();
    for (i, &a) in internal.iter().enumerate() {
        for &b in &internal[i + 1..] {
            if computation.concurrent(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::monitor::def::{readers_writers_monitor, MonitorProgram, ProcessDef, ScriptStep};
    use gem_logic::{holds_on_computation, Strategy};
    use std::ops::ControlFlow;

    fn call(entry: &str) -> ScriptStep {
        ScriptStep::Call {
            entry: entry.into(),
            args: vec![],
        }
    }

    fn rw_program(readers: usize, writers: usize) -> MonitorProgram {
        let mut prog = MonitorProgram::new(readers_writers_monitor());
        for i in 0..readers {
            prog = prog.process(ProcessDef::new(
                format!("r{i}"),
                vec![call("StartRead"), call("EndRead")],
            ));
        }
        for i in 0..writers {
            prog = prog.process(ProcessDef::new(
                format!("w{i}"),
                vec![call("StartWrite"), call("EndWrite")],
            ));
        }
        prog
    }

    #[test]
    fn monitor_restrictions_hold_on_all_rw_schedules() {
        let sys = MonitorSystem::new(rw_program(2, 1));
        let restrictions = monitor_restrictions(&sys);
        assert!(restrictions.len() >= 5);
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            for (name, f) in &restrictions {
                assert!(
                    holds_on_computation(f, &c).unwrap(),
                    "restriction {name} violated"
                );
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn entries_sequential_on_all_schedules() {
        let sys = MonitorSystem::new(rw_program(2, 1));
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            assert!(entries_sequential(&sys, &c));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn user_events_are_concurrent_across_processes() {
        // Sanity: the sequential-entries property is about the monitor,
        // not the users — independent user events stay concurrent.
        let mut prog = rw_program(1, 0);
        prog = prog.user_class("Think", &[]);
        let mut procs = std::mem::take(&mut prog.processes);
        procs.push(ProcessDef::new(
            "idler",
            vec![ScriptStep::Event {
                class: "Think".into(),
                params: vec![],
            }],
        ));
        prog.processes = procs;
        let sys = MonitorSystem::new(prog);
        let mut found_concurrent = false;
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            let think: Vec<_> = c.events_of_class(sys.class("Think")).collect();
            let begin: Vec<_> = c.events_of_class(sys.class("Begin")).collect();
            if !think.is_empty() && !begin.is_empty() && c.concurrent(think[0], begin[0]) {
                found_concurrent = true;
            }
            ControlFlow::Continue(())
        });
        assert!(found_concurrent);
    }

    #[test]
    fn monitor_restrictions_hold_under_mesa_semantics() {
        // Signal/Wait → Resume pairing is a property of the primitive's
        // event structure, independent of the signalling discipline.
        use crate::monitor::def::SignalSemantics;
        let mut prog = rw_program(1, 2);
        prog.semantics = SignalSemantics::Mesa;
        let sys = MonitorSystem::new(prog);
        let restrictions = monitor_restrictions(&sys);
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            for (name, f) in &restrictions {
                assert!(
                    holds_on_computation(f, &c).unwrap(),
                    "restriction {name} violated under Mesa"
                );
            }
            assert!(entries_sequential(&sys, &c));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn restrictions_hold_under_linearization_checking() {
        // The same restrictions, checked with the sequence machinery.
        let sys = MonitorSystem::new(rw_program(1, 1));
        let restrictions = monitor_restrictions(&sys);
        let mut checked = 0;
        Explorer::with_max_runs(3).for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            for (_, f) in &restrictions {
                let r = gem_logic::check(f, &c, Strategy::Complete).unwrap();
                assert!(r.holds);
            }
            checked += 1;
            ControlFlow::Continue(())
        });
        assert!(checked > 0);
    }
}
