//! Execution of monitor programs into GEM computations.
//!
//! [`MonitorSystem`] implements [`System`](crate::System): scheduler
//! choices are (a) which user process takes its next script step and
//! (b) which pending caller acquires the free monitor. Monitor entry code
//! runs to its next blocking point within one action — the monitor lock
//! excludes all other monitor activity anyway, and user-level events of
//! other processes remain concurrent *in the generated computation*, so
//! event-level interleavings are fully represented even though entries are
//! scheduler-atomic.
//!
//! Signal semantics are Hoare's with an urgent stack: `SIGNAL` on a
//! non-empty condition passes the monitor to the first waiter immediately
//! and parks the signaller; on release, parked signallers resume before
//! any new entry. This is the discipline §9's readers-priority proof
//! assumes ("all waiting readers will be signalled before any other
//! process executes in the monitor").
//!
//! ## Event vocabulary
//!
//! | Element | Classes (params) |
//! |---------|------------------|
//! | each user process | `Call(entry)`, `Return(entry)`, plus declared user classes |
//! | `<m>.lock` | `Req(entry, pid)`, `Acquire(pid)`, `Release(pid)` — `Req` is the monitor group's port |
//! | `<m>.entry.<e>` | `Begin(pid)`, `End(pid)` |
//! | `<m>.var.<v>`, shared `<v>` | `Assign(newval, entry, pid)`, `Getval(oldval, entry, pid)` |
//! | `<m>.cond.<c>` | `Wait(pid)`, `Signal(pid)`, `Resume(pid)` |
//! | `<m>.init` | `Init()` |

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use gem_core::{
    BuildError, BuilderMark, ClassId, Computation, ComputationBuilder, ElementId, EventId,
    Structure, Value,
};

use crate::ast::VarStore;
use crate::code::{CodeStats, CondKind, ExprId, ExprPool, SlotLayout};
use crate::explore::System;
use crate::monitor::def::{MonitorProgram, ScriptStep, SignalSemantics, Stmt};

/// Sentinel `pid` parameter for initialization events.
const INIT_PID: i64 = -1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Classes {
    call: ClassId,
    ret: ClassId,
    req: ClassId,
    acquire: ClassId,
    release: ClassId,
    begin: ClassId,
    end: ClassId,
    assign: ClassId,
    getval: ClassId,
    wait: ClassId,
    signal: ClassId,
    resume: ClassId,
    init: ClassId,
}

/// A monitor program compiled against a GEM structure, ready to execute.
#[derive(Clone, Debug)]
pub struct MonitorSystem {
    program: MonitorProgram,
    structure: Arc<Structure>,
    cls: Classes,
    user_cls: BTreeMap<String, ClassId>,
    user_els: Vec<ElementId>,
    lock_el: ElementId,
    init_el: ElementId,
    entry_els: Vec<ElementId>,
    var_els: BTreeMap<String, ElementId>,
    cond_els: BTreeMap<String, ElementId>,
    /// Commutativity class of every script step, per (process, position):
    /// the independence oracle's lookup table, precomputed so the hot
    /// path never re-inspects script text.
    step_class: Vec<Vec<StepClass>>,
    /// Per-entry variable footprint `(reads, writes)` of each entry body
    /// (IF/WHILE conditions and assignment right-hand sides for reads,
    /// all branches for both), indexed by entry index. The independence
    /// oracle unions the footprints of exactly the entries a monitor
    /// action can execute — the acting entry plus, under Hoare
    /// semantics, any parked continuation a signal chain can run — so
    /// entries over disjoint variables commute with unrelated script
    /// steps instead of conflicting through a global union.
    entry_footprints: Vec<(BTreeSet<String>, BTreeSet<String>)>,
    /// Compiled form of every entry body, script step, and expression
    /// (built unconditionally at construction; `compiled` selects which
    /// execution path uses it).
    code: Arc<MonitorCode>,
    /// Execute compiled programs (`true`, the default) or the
    /// tree-walking interpreter (the differential oracle).
    compiled: bool,
}

/// Everything the compiled execution path needs, built once per system:
/// slot layouts, postfix expression code, flat entry-body programs with
/// jump targets, per-step codes, and pre-materialized event parameters.
#[derive(Clone, Debug)]
struct MonitorCode {
    pool: ExprPool,
    globals: SlotLayout,
    /// Initial global-scope values in slot order.
    init_gslots: Vec<Value>,
    /// Condition names in declaration order (`MOp` indexes into this to
    /// key the wait queues).
    conds: Vec<String>,
    entries: Vec<EntryProg>,
    /// Per (process, script position) compiled step.
    steps: Vec<Vec<StepCode>>,
    /// `[entry][pid]` → `[Str(entry_name), Int(pid)]` event parameters,
    /// shared by both execution modes so emitted computations stay
    /// byte-identical.
    entry_params: Vec<Vec<[Value; 2]>>,
    /// `[pid]` → `[Str(""), Int(pid)]` for shared-variable accesses
    /// outside any entry.
    shared_params: Vec<[Value; 2]>,
    stats: CodeStats,
}

/// One entry body as a flat basic-block program.
#[derive(Clone, Debug)]
struct EntryProg {
    ops: Vec<MOp>,
    /// Local scope: the entry's parameters.
    params: SlotLayout,
    /// Slot of each declared parameter, positionally (duplicates share a
    /// slot; binding in order reproduces last-wins `VarStore` semantics).
    param_slots: Vec<u32>,
}

/// One flat monitor-entry instruction. Jump targets replace the
/// interpreter's cloned `VecDeque` statement frames.
#[derive(Clone, Debug)]
enum MOp {
    /// Evaluate and store to a global slot, emitting `Assign`.
    Assign {
        gslot: u32,
        el: ElementId,
        expr: ExprId,
    },
    /// Assignment to an undeclared variable: evaluate (surfacing any
    /// expression error first, like the interpreter), then panic.
    AssignUnknown {
        name: String,
        expr: ExprId,
    },
    /// `IF`/`WHILE` condition: fall through when true, jump when false.
    JumpIfFalse {
        cond: ExprId,
        target: u32,
        kind: CondKind,
    },
    Jump(u32),
    /// `WAIT` on condition `conds[cond]` (element precomputed).
    Wait {
        cond: u32,
        el: ElementId,
    },
    /// `SIGNAL` on condition `conds[cond]`.
    Signal {
        cond: u32,
        el: ElementId,
    },
    /// `IF queue`: fall through when the queue is non-empty.
    JumpIfQueueEmpty {
        cond: u32,
        target: u32,
    },
    /// A statement naming an undeclared condition — panics at execution
    /// with the interpreter's message (`queue_probe` distinguishes the
    /// `IF queue` probe from `WAIT`/`SIGNAL` element lookup).
    UnknownCond {
        name: String,
        queue_probe: bool,
    },
    /// Entry body finished.
    End,
}

/// Compiled form of one script step. `Call`/`Event` carry pre-evaluated
/// values in the program text and need no compilation.
#[derive(Clone, Copy, Debug)]
enum StepCode {
    Call,
    Event,
    Read {
        gslot: u32,
        el: ElementId,
    },
    Write {
        gslot: u32,
        el: ElementId,
        expr: ExprId,
    },
}

fn patch_jump(ops: &mut [MOp], at: usize, to: u32) {
    match &mut ops[at] {
        MOp::JumpIfFalse { target, .. }
        | MOp::Jump(target)
        | MOp::JumpIfQueueEmpty { target, .. } => *target = to,
        other => unreachable!("patching non-jump {other:?}"),
    }
}

/// Compiles entry-body statements into flat [`MOp`] programs.
struct EntryCompiler<'a> {
    pool: &'a mut ExprPool,
    params: &'a SlotLayout,
    globals: &'a SlotLayout,
    var_els: &'a BTreeMap<String, ElementId>,
    conds: &'a [String],
    cond_els: &'a BTreeMap<String, ElementId>,
    ops: Vec<MOp>,
}

impl EntryCompiler<'_> {
    fn cond(&self, name: &str) -> Option<(u32, ElementId)> {
        let idx = self.conds.iter().position(|c| c == name)?;
        Some((idx as u32, self.cond_els[name]))
    }

    fn expr(&mut self, e: &crate::ast::Expr) -> ExprId {
        self.pool.compile(e, self.params, self.globals)
    }

    fn compile(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign(var, expr) => {
                    let expr = self.expr(expr);
                    match (self.globals.get(var), self.var_els.get(var)) {
                        (Some(gslot), Some(&el)) => {
                            self.ops.push(MOp::Assign { gslot, el, expr });
                        }
                        _ => self.ops.push(MOp::AssignUnknown {
                            name: var.clone(),
                            expr,
                        }),
                    }
                }
                Stmt::If(cond, then_branch, else_branch) => {
                    let cond = self.expr(cond);
                    let jf = self.ops.len();
                    self.ops.push(MOp::JumpIfFalse {
                        cond,
                        target: 0,
                        kind: CondKind::If,
                    });
                    self.compile(then_branch);
                    if else_branch.is_empty() {
                        let end = self.ops.len() as u32;
                        patch_jump(&mut self.ops, jf, end);
                    } else {
                        let j = self.ops.len();
                        self.ops.push(MOp::Jump(0));
                        let else_start = self.ops.len() as u32;
                        patch_jump(&mut self.ops, jf, else_start);
                        self.compile(else_branch);
                        let end = self.ops.len() as u32;
                        patch_jump(&mut self.ops, j, end);
                    }
                }
                Stmt::While(cond, body) => {
                    let head = self.ops.len() as u32;
                    let cond = self.expr(cond);
                    let jf = self.ops.len();
                    self.ops.push(MOp::JumpIfFalse {
                        cond,
                        target: 0,
                        kind: CondKind::While,
                    });
                    self.compile(body);
                    self.ops.push(MOp::Jump(head));
                    let end = self.ops.len() as u32;
                    patch_jump(&mut self.ops, jf, end);
                }
                Stmt::Wait(name) => match self.cond(name) {
                    Some((cond, el)) => self.ops.push(MOp::Wait { cond, el }),
                    None => self.ops.push(MOp::UnknownCond {
                        name: name.clone(),
                        queue_probe: false,
                    }),
                },
                Stmt::Signal(name) => match self.cond(name) {
                    Some((cond, el)) => self.ops.push(MOp::Signal { cond, el }),
                    None => self.ops.push(MOp::UnknownCond {
                        name: name.clone(),
                        queue_probe: false,
                    }),
                },
                Stmt::IfQueue(name, then_branch, else_branch) => match self.cond(name) {
                    Some((cond, _)) => {
                        let jq = self.ops.len();
                        self.ops.push(MOp::JumpIfQueueEmpty { cond, target: 0 });
                        self.compile(then_branch);
                        if else_branch.is_empty() {
                            let end = self.ops.len() as u32;
                            patch_jump(&mut self.ops, jq, end);
                        } else {
                            let j = self.ops.len();
                            self.ops.push(MOp::Jump(0));
                            let else_start = self.ops.len() as u32;
                            patch_jump(&mut self.ops, jq, else_start);
                            self.compile(else_branch);
                            let end = self.ops.len() as u32;
                            patch_jump(&mut self.ops, j, end);
                        }
                    }
                    None => self.ops.push(MOp::UnknownCond {
                        name: name.clone(),
                        queue_probe: true,
                    }),
                },
            }
        }
    }
}

/// Commutativity class of one script step, for the independence oracle.
/// `Call` arguments and `Event` parameters are pre-evaluated [`Value`]s,
/// so neither reads any variable.
#[derive(Clone, Debug)]
enum StepClass {
    /// Entry request: emits on the caller's element *and* the lock.
    Call,
    /// Local event on the caller's own element only.
    Event,
    /// `Getval` of one variable (reads it, emits at its element).
    Read(String),
    /// `Assign` of one variable; `reads` is the value expression's
    /// read footprint.
    Write {
        var: String,
        reads: BTreeSet<String>,
    },
}

/// Commutativity class of one enabled [`MonitorAction`], resolved against
/// the current state.
enum ActionClass<'a> {
    /// `Enter`/`Resume`: runs monitor code under the lock.
    Entry,
    /// `Step`: performs the process's next script step.
    Step(&'a StepClass),
}

/// Accumulates the variable read/write footprint of entry-body statements
/// (recursing through all branches; `WAIT`/`SIGNAL`/`IF queue` name
/// conditions, not variables).
fn stmt_footprint(stmts: &[Stmt], reads: &mut BTreeSet<String>, writes: &mut BTreeSet<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(var, expr) => {
                writes.insert(var.clone());
                expr.collect_vars(reads);
            }
            Stmt::If(cond, then_branch, else_branch) => {
                cond.collect_vars(reads);
                stmt_footprint(then_branch, reads, writes);
                stmt_footprint(else_branch, reads, writes);
            }
            Stmt::While(cond, body) => {
                cond.collect_vars(reads);
                stmt_footprint(body, reads, writes);
            }
            Stmt::Wait(_) | Stmt::Signal(_) => {}
            Stmt::IfQueue(_, then_branch, else_branch) => {
                stmt_footprint(then_branch, reads, writes);
                stmt_footprint(else_branch, reads, writes);
            }
        }
    }
}

/// Status of a user process between scheduler actions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
enum Status {
    /// Ready to take its next script step.
    Ready,
    /// Requested an entry; waiting for the monitor lock.
    Pending,
    /// Blocked in `WAIT` on a condition.
    Waiting,
    /// Signalled under Mesa semantics: eligible to re-acquire the lock.
    ReAcquire,
    /// Parked on the urgent stack after `SIGNAL` (Hoare semantics).
    Urgent,
    /// Script exhausted.
    Done,
}

#[derive(Clone, Debug)]
struct ProcRuntime {
    script_pos: usize,
    status: Status,
    frames: Vec<VecDeque<Stmt>>,
    entry: Option<usize>,
    locals: VarStore,
    /// Compiled mode: entry-parameter slots (`None` = unbound, global
    /// shows through), replacing `locals`.
    lslots: Vec<Option<Value>>,
    /// Compiled mode: program counter into the entry's flat ops,
    /// replacing `frames`.
    pc: u32,
    pending_args: Vec<Value>,
    last: Option<EventId>,
    wait_event: Option<EventId>,
    /// Mesa: the signal that woke this process, pending its re-acquire.
    pending_signal: Option<EventId>,
    /// Mesa: the condition this process is resuming from.
    resume_cond: Option<String>,
}

/// Full execution state of a monitor program, including the computation
/// built so far.
#[derive(Clone, Debug)]
pub struct MonitorState {
    builder: ComputationBuilder,
    vars: VarStore,
    /// Compiled mode: global scope read/written in place by slot,
    /// replacing `vars`.
    gslots: Vec<Value>,
    procs: Vec<ProcRuntime>,
    lock: Option<usize>,
    /// Last initialization event inside the monitor; enables the first
    /// acquisition (the monitor cannot run before it is initialized).
    init_done: Option<EventId>,
    urgent: Vec<usize>,
    queues: BTreeMap<String, VecDeque<usize>>,
}

/// Rollback record for the exploration fast path
/// ([`System::checkpoint`]/[`System::undo`]): the small control state is
/// snapshotted wholesale, while the monotonically-growing computation
/// trace — the expensive part of a [`MonitorState`] clone — rolls back
/// through a [`BuilderMark`].
#[derive(Clone, Debug)]
pub struct MonitorCheckpoint {
    mark: BuilderMark,
    vars: VarStore,
    gslots: Vec<Value>,
    procs: Vec<ProcRuntime>,
    lock: Option<usize>,
    init_done: Option<EventId>,
    urgent: Vec<usize>,
    queues: BTreeMap<String, VecDeque<usize>>,
}

/// A scheduler choice for a monitor program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MonitorAction {
    /// Process `pid` performs its next script step (a local event, shared
    /// access, or an entry request).
    Step(usize),
    /// Pending process `pid` acquires the free monitor and runs its entry
    /// to the next blocking point.
    Enter(usize),
    /// Mesa semantics: signalled process `pid` re-acquires the free
    /// monitor and resumes after its `WAIT`.
    Resume(usize),
}

impl MonitorSystem {
    /// Compiles `program` into a system: builds the GEM structure (the
    /// Monitor group with `PORTS(lock.Req)`, per §9) and caches ids.
    ///
    /// # Panics
    ///
    /// Panics if the program is ill-formed (duplicate names, a script
    /// referencing an unknown entry/variable/class). These are
    /// program-text errors, reported eagerly.
    pub fn new(program: MonitorProgram) -> Self {
        let mut s = Structure::new();
        let m = &program.monitor.name;
        let cls = Classes {
            call: s.add_class("Call", &["entry"]).expect("fresh class"),
            ret: s.add_class("Return", &["entry"]).expect("fresh class"),
            req: s.add_class("Req", &["entry", "pid"]).expect("fresh class"),
            acquire: s.add_class("Acquire", &["pid"]).expect("fresh class"),
            release: s.add_class("Release", &["pid"]).expect("fresh class"),
            begin: s.add_class("Begin", &["pid"]).expect("fresh class"),
            end: s.add_class("End", &["pid"]).expect("fresh class"),
            assign: s
                .add_class("Assign", &["newval", "entry", "pid"])
                .expect("fresh class"),
            getval: s
                .add_class("Getval", &["oldval", "entry", "pid"])
                .expect("fresh class"),
            wait: s.add_class("Wait", &["pid"]).expect("fresh class"),
            signal: s.add_class("Signal", &["pid"]).expect("fresh class"),
            resume: s.add_class("Resume", &["pid"]).expect("fresh class"),
            init: s.add_class("Init", &[]).expect("fresh class"),
        };
        let mut user_cls = BTreeMap::new();
        for (name, params) in &program.user_classes {
            let ps: Vec<&str> = params.iter().map(String::as_str).collect();
            user_cls.insert(
                name.clone(),
                s.add_class(name.clone(), &ps).expect("user class"),
            );
        }
        let user_els: Vec<ElementId> = program
            .processes
            .iter()
            .map(|p| {
                let mut classes = vec![cls.call, cls.ret];
                classes.extend(user_cls.values().copied());
                s.add_element(p.name.clone(), &classes)
                    .expect("user element")
            })
            .collect();
        let lock_el = s
            .add_element(format!("{m}.lock"), &[cls.req, cls.acquire, cls.release])
            .expect("lock element");
        let init_el = s
            .add_element(format!("{m}.init"), &[cls.init])
            .expect("init element");
        let entry_els: Vec<ElementId> = program
            .monitor
            .entries
            .iter()
            .map(|e| {
                s.add_element(format!("{m}.entry.{}", e.name), &[cls.begin, cls.end])
                    .expect("entry element")
            })
            .collect();
        let mut var_els = BTreeMap::new();
        for (v, _) in &program.monitor.vars {
            var_els.insert(
                v.clone(),
                s.add_element(format!("{m}.var.{v}"), &[cls.assign, cls.getval])
                    .expect("var element"),
            );
        }
        for (v, _) in &program.shared_vars {
            var_els.insert(
                v.clone(),
                s.add_element(v.clone(), &[cls.assign, cls.getval])
                    .expect("shared var element"),
            );
        }
        let mut cond_els = BTreeMap::new();
        for c in &program.monitor.conditions {
            cond_els.insert(
                c.clone(),
                s.add_element(format!("{m}.cond.{c}"), &[cls.wait, cls.signal, cls.resume])
                    .expect("cond element"),
            );
        }
        // Monitor = GROUP(lock, init, {entry}, {cond}, {var}) PORTS(lock.Req)
        let mut members: Vec<gem_core::NodeRef> = vec![lock_el.into(), init_el.into()];
        members.extend(entry_els.iter().map(|&e| gem_core::NodeRef::from(e)));
        members.extend(cond_els.values().map(|&e| gem_core::NodeRef::from(e)));
        for (v, _) in &program.monitor.vars {
            members.push(var_els[v].into());
        }
        let group = s.add_group(m.clone(), &members).expect("monitor group");
        s.add_port(group, lock_el, cls.req).expect("lock.Req port");

        // Validate scripts eagerly.
        for p in &program.processes {
            for step in &p.script {
                match step {
                    ScriptStep::Call { entry, .. } => {
                        assert!(
                            program.monitor.entry_index(entry).is_some(),
                            "process {:?} calls unknown entry {entry:?}",
                            p.name
                        );
                    }
                    ScriptStep::Event { class, .. } => {
                        assert!(
                            user_cls.contains_key(class),
                            "process {:?} emits undeclared user class {class:?}",
                            p.name
                        );
                    }
                    ScriptStep::ReadShared { var } | ScriptStep::WriteShared { var, .. } => {
                        assert!(
                            program.shared_vars.iter().any(|(v, _)| v == var),
                            "process {:?} accesses unknown shared variable {var:?}",
                            p.name
                        );
                    }
                }
            }
        }

        // Precompute the independence oracle's lookup tables.
        let step_class: Vec<Vec<StepClass>> = program
            .processes
            .iter()
            .map(|p| {
                p.script
                    .iter()
                    .map(|step| match step {
                        ScriptStep::Call { .. } => StepClass::Call,
                        ScriptStep::Event { .. } => StepClass::Event,
                        ScriptStep::ReadShared { var } => StepClass::Read(var.clone()),
                        ScriptStep::WriteShared { var, value } => {
                            let mut reads = BTreeSet::new();
                            value.collect_vars(&mut reads);
                            StepClass::Write {
                                var: var.clone(),
                                reads,
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        let entry_footprints: Vec<(BTreeSet<String>, BTreeSet<String>)> = program
            .monitor
            .entries
            .iter()
            .map(|entry| {
                let mut reads = BTreeSet::new();
                let mut writes = BTreeSet::new();
                stmt_footprint(&entry.body, &mut reads, &mut writes);
                (reads, writes)
            })
            .collect();

        // Compile once: slot layouts, expression IR, flat entry programs.
        let t0 = Instant::now();
        let mut pool = ExprPool::new();
        let mut globals = SlotLayout::new();
        for (v, _) in &program.monitor.vars {
            globals.intern(v);
        }
        for (v, _) in &program.shared_vars {
            globals.intern(v);
        }
        let mut init_gslots = vec![Value::Int(0); globals.len()];
        for (v, value) in program.monitor.vars.iter().chain(&program.shared_vars) {
            init_gslots[globals.get(v).expect("interned above") as usize] = value.clone();
        }
        let conds: Vec<String> = program.monitor.conditions.clone();
        let entries: Vec<EntryProg> = program
            .monitor
            .entries
            .iter()
            .map(|e| {
                let mut params = SlotLayout::new();
                let param_slots: Vec<u32> = e.params.iter().map(|p| params.intern(p)).collect();
                let mut c = EntryCompiler {
                    pool: &mut pool,
                    params: &params,
                    globals: &globals,
                    var_els: &var_els,
                    conds: &conds,
                    cond_els: &cond_els,
                    ops: Vec::new(),
                };
                c.compile(&e.body);
                let mut ops = c.ops;
                ops.push(MOp::End);
                EntryProg {
                    ops,
                    params,
                    param_slots,
                }
            })
            .collect();
        let empty_layout = SlotLayout::new();
        let steps: Vec<Vec<StepCode>> = program
            .processes
            .iter()
            .map(|p| {
                p.script
                    .iter()
                    .map(|step| match step {
                        ScriptStep::Call { .. } => StepCode::Call,
                        ScriptStep::Event { .. } => StepCode::Event,
                        ScriptStep::ReadShared { var } => StepCode::Read {
                            gslot: globals.get(var).expect("validated above"),
                            el: var_els[var],
                        },
                        ScriptStep::WriteShared { var, value } => StepCode::Write {
                            gslot: globals.get(var).expect("validated above"),
                            el: var_els[var],
                            expr: pool.compile(value, &empty_layout, &globals),
                        },
                    })
                    .collect()
            })
            .collect();
        let n_procs = program.processes.len();
        let entry_params: Vec<Vec<[Value; 2]>> = program
            .monitor
            .entries
            .iter()
            .map(|e| {
                (0..n_procs)
                    .map(|pid| [Value::Str(e.name.clone()), Value::Int(pid as i64)])
                    .collect()
            })
            .collect();
        let shared_params: Vec<[Value; 2]> = (0..n_procs)
            .map(|pid| [Value::Str(String::new()), Value::Int(pid as i64)])
            .collect();
        let stats = CodeStats {
            exprs: pool.expr_count() as u64,
            ops: pool.op_count() as u64 + entries.iter().map(|e| e.ops.len() as u64).sum::<u64>(),
            consts: pool.const_count() as u64,
            programs: entries.len() as u64,
            slots: globals.len() as u64
                + entries.iter().map(|e| e.params.len() as u64).sum::<u64>(),
            compile_ns: t0.elapsed().as_nanos() as u64,
        };
        let code = Arc::new(MonitorCode {
            pool,
            globals,
            init_gslots,
            conds,
            entries,
            steps,
            entry_params,
            shared_params,
            stats,
        });

        Self {
            program,
            structure: Arc::new(s),
            cls,
            user_cls,
            user_els,
            lock_el,
            init_el,
            entry_els,
            var_els,
            cond_els,
            step_class,
            entry_footprints,
            code,
            compiled: true,
        }
    }

    /// Selects compiled (slot/IR) or interpreted (tree-walking) step
    /// execution. Both modes produce byte-identical computations; the
    /// interpreter is retained as the differential oracle behind
    /// `--compile=off`.
    pub fn set_compile(&mut self, on: bool) {
        self.compiled = on;
    }

    /// Builder-style [`MonitorSystem::set_compile`].
    #[must_use]
    pub fn with_compile(mut self, on: bool) -> Self {
        self.set_compile(on);
        self
    }

    /// Build-time statistics of the compiled code (the `code.*` and
    /// `explore.compile_ns` observability counters).
    pub fn code_stats(&self) -> CodeStats {
        self.code.stats
    }

    /// Reads monitor/shared variable `name` from `state`, resolving
    /// through slots in compiled mode and the name-keyed store otherwise.
    pub fn global<'a>(&self, state: &'a MonitorState, name: &str) -> Option<&'a Value> {
        if self.compiled {
            self.code
                .globals
                .get(name)
                .map(|s| &state.gslots[s as usize])
        } else {
            state.vars.get(name)
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &MonitorProgram {
        &self.program
    }

    /// The GEM structure computations of this system use.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Shared handle to the structure.
    pub fn structure_arc(&self) -> Arc<Structure> {
        Arc::clone(&self.structure)
    }

    /// The element of user process `pid`.
    pub fn user_element(&self, pid: usize) -> ElementId {
        self.user_els[pid]
    }

    /// The monitor lock element.
    pub fn lock_element(&self) -> ElementId {
        self.lock_el
    }

    /// The element of entry `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn entry_element(&self, name: &str) -> ElementId {
        let i = self
            .program
            .monitor
            .entry_index(name)
            .unwrap_or_else(|| panic!("unknown entry {name:?}"));
        self.entry_els[i]
    }

    /// The element of monitor or shared variable `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such variable exists.
    pub fn var_element(&self, name: &str) -> ElementId {
        *self
            .var_els
            .get(name)
            .unwrap_or_else(|| panic!("unknown variable {name:?}"))
    }

    /// The element of condition `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such condition exists.
    pub fn cond_element(&self, name: &str) -> ElementId {
        *self
            .cond_els
            .get(name)
            .unwrap_or_else(|| panic!("unknown condition {name:?}"))
    }

    /// Class id of a built-in monitor event class (`"Call"`, `"Req"`,
    /// `"Assign"`, …) or a declared user class.
    ///
    /// # Panics
    ///
    /// Panics if the class is unknown.
    pub fn class(&self, name: &str) -> ClassId {
        match name {
            "Call" => self.cls.call,
            "Return" => self.cls.ret,
            "Req" => self.cls.req,
            "Acquire" => self.cls.acquire,
            "Release" => self.cls.release,
            "Begin" => self.cls.begin,
            "End" => self.cls.end,
            "Assign" => self.cls.assign,
            "Getval" => self.cls.getval,
            "Wait" => self.cls.wait,
            "Signal" => self.cls.signal,
            "Resume" => self.cls.resume,
            "Init" => self.cls.init,
            other => *self
                .user_cls
                .get(other)
                .unwrap_or_else(|| panic!("unknown class {other:?}")),
        }
    }

    /// Seals the computation accumulated in `state`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the trace is cyclic — which would indicate
    /// a simulator bug, as emitted edges always point forward in time.
    pub fn computation(&self, state: &MonitorState) -> Result<Computation, BuildError> {
        state.builder.seal_ref()
    }

    fn emit(
        &self,
        state: &mut MonitorState,
        pid: Option<usize>,
        element: ElementId,
        class: ClassId,
        params: Vec<Value>,
        extra_enablers: &[EventId],
    ) -> EventId {
        let e = state
            .builder
            .add_event(element, class, params)
            .expect("ids are from this structure");
        if let Some(p) = pid {
            if let Some(last) = state.procs[p].last {
                state.builder.enable(last, e).expect("known events");
            }
            state.procs[p].last = Some(e);
        }
        for &x in extra_enablers {
            state.builder.enable(x, e).expect("known events");
        }
        e
    }

    fn eval_env(&self, state: &MonitorState, pid: usize) -> VarStore {
        let mut env = state.vars.clone();
        env.extend(
            state.procs[pid]
                .locals
                .iter()
                .map(|(n, v)| (n.to_owned(), v.clone())),
        );
        env
    }

    /// Runs process `pid` (which holds the monitor) until it waits,
    /// signals a non-empty condition, or finishes its entry.
    fn run(&self, state: &mut MonitorState, pid: usize) {
        loop {
            // Drop exhausted frames.
            while matches!(state.procs[pid].frames.last(), Some(f) if f.is_empty()) {
                state.procs[pid].frames.pop();
            }
            let Some(stmt) = state.procs[pid]
                .frames
                .last_mut()
                .and_then(VecDeque::pop_front)
            else {
                self.finish_entry(state, pid);
                return;
            };
            match stmt {
                Stmt::Assign(var, expr) => {
                    let env = self.eval_env(state, pid);
                    let v = expr
                        .eval(&env)
                        .unwrap_or_else(|e| panic!("monitor runtime error: {e}"));
                    state.vars.set(var.clone(), v.clone());
                    let [p_entry, p_pid] = self.entry_param_pair(state, pid);
                    self.emit(
                        state,
                        Some(pid),
                        self.var_element(&var),
                        self.cls.assign,
                        vec![v, p_entry, p_pid],
                        &[],
                    );
                }
                Stmt::If(cond, then_branch, else_branch) => {
                    let env = self.eval_env(state, pid);
                    let b = cond
                        .eval(&env)
                        .unwrap_or_else(|e| panic!("monitor runtime error: {e}"))
                        .as_bool()
                        .expect("IF condition must be boolean");
                    let branch = if b { then_branch } else { else_branch };
                    state.procs[pid].frames.push(branch.into_iter().collect());
                }
                Stmt::While(cond, body) => {
                    let env = self.eval_env(state, pid);
                    let b = cond
                        .eval(&env)
                        .unwrap_or_else(|e| panic!("monitor runtime error: {e}"))
                        .as_bool()
                        .expect("WHILE condition must be boolean");
                    if b {
                        let mut frame: VecDeque<Stmt> = body.iter().cloned().collect();
                        frame.push_back(Stmt::While(cond, body));
                        state.procs[pid].frames.push(frame);
                    }
                }
                Stmt::Wait(cond) => {
                    // Join the condition queue inside the monitor, then
                    // release the lock. The Wait event is remembered so
                    // the eventual Resume is enabled by it (alongside the
                    // Signal and the chain's Release).
                    let wait_ev = self.emit(
                        state,
                        Some(pid),
                        self.cond_element(&cond),
                        self.cls.wait,
                        vec![Value::Int(pid as i64)],
                        &[],
                    );
                    state.procs[pid].wait_event = Some(wait_ev);
                    let rel = self.emit(
                        state,
                        Some(pid),
                        self.lock_el,
                        self.cls.release,
                        vec![Value::Int(pid as i64)],
                        &[],
                    );
                    let _ = rel;
                    state
                        .queues
                        .get_mut(&cond)
                        .expect("known condition")
                        .push_back(pid);
                    state.procs[pid].status = Status::Waiting;
                    state.lock = None;
                    self.pop_urgent(state);
                    return;
                }
                Stmt::Signal(cond) => {
                    let sig = self.emit(
                        state,
                        Some(pid),
                        self.cond_element(&cond),
                        self.cls.signal,
                        vec![Value::Int(pid as i64)],
                        &[],
                    );
                    let waiter = state
                        .queues
                        .get_mut(&cond)
                        .expect("known condition")
                        .pop_front();
                    if let Some(w) = waiter {
                        match self.program.semantics {
                            SignalSemantics::Hoare => {
                                // Monitor passes to the waiter; signaller
                                // parks on the urgent stack.
                                state.urgent.push(pid);
                                state.procs[pid].status = Status::Urgent;
                                state.lock = Some(w);
                                state.procs[w].status = Status::Ready;
                                let mut extra = vec![sig];
                                if let Some(we) = state.procs[w].wait_event.take() {
                                    extra.push(we);
                                }
                                self.emit(
                                    state,
                                    Some(w),
                                    self.cond_element(&cond),
                                    self.cls.resume,
                                    vec![Value::Int(w as i64)],
                                    &extra,
                                );
                                self.run(state, w);
                                return;
                            }
                            SignalSemantics::Mesa => {
                                // Signal-and-continue: the waiter merely
                                // becomes eligible to re-acquire; the
                                // signaller keeps running, and new
                                // entrants may overtake the waiter.
                                state.procs[w].status = Status::ReAcquire;
                                state.procs[w].pending_signal = Some(sig);
                                state.procs[w].resume_cond = Some(cond.clone());
                            }
                        }
                    }
                }
                Stmt::IfQueue(cond, then_branch, else_branch) => {
                    let nonempty = !state.queues.get(&cond).expect("known condition").is_empty();
                    let branch = if nonempty { then_branch } else { else_branch };
                    state.procs[pid].frames.push(branch.into_iter().collect());
                }
            }
        }
    }

    /// Resolves the commutativity class of `action` in `state`: monitor
    /// code (`Enter`/`Resume`) or the script step a `Step` will perform.
    fn action_class<'a>(&'a self, state: &MonitorState, action: &MonitorAction) -> ActionClass<'a> {
        match *action {
            MonitorAction::Enter(_) | MonitorAction::Resume(_) => ActionClass::Entry,
            MonitorAction::Step(pid) => {
                ActionClass::Step(&self.step_class[pid][state.procs[pid].script_pos])
            }
        }
    }

    /// Entry indices whose bodies the monitor action `action` can execute
    /// within one scheduler action: the acting process's entry plus,
    /// under Hoare semantics, every parked continuation a signal chain or
    /// urgent-stack pop could run before the action returns (processes
    /// `Waiting` on a condition or parked `Urgent`). Under Mesa
    /// signal-and-continue, no other process's code runs within the
    /// action, so only the acting entry is involved.
    fn involved_entries(&self, state: &MonitorState, action: &MonitorAction) -> Vec<usize> {
        let mut entries = Vec::new();
        match *action {
            MonitorAction::Enter(pid) => {
                // The entry index is not in `ProcRuntime::entry` yet (that
                // is set by `apply`); resolve it from the call step.
                if let ScriptStep::Call { ref entry, .. } =
                    self.program.processes[pid].script[state.procs[pid].script_pos]
                {
                    entries.push(
                        self.program
                            .monitor
                            .entry_index(entry)
                            .expect("validated at construction"),
                    );
                }
            }
            MonitorAction::Resume(pid) => entries.extend(state.procs[pid].entry),
            MonitorAction::Step(_) => {}
        }
        if self.program.semantics == SignalSemantics::Hoare {
            for proc in &state.procs {
                if matches!(proc.status, Status::Waiting | Status::Urgent) {
                    entries.extend(proc.entry);
                }
            }
        }
        entries
    }

    /// Whether monitor code (an entry execution, including any signal
    /// chain) commutes with the given script step. Entry code emits on
    /// the lock, entry, condition, and monitor-variable elements plus the
    /// acting processes' own user elements — never on another *enabled*
    /// process's element — so the only conflicts are lock traffic and
    /// variable footprint overlap. The footprint is the union over
    /// exactly the entries `action` can run in `state`
    /// ([`MonitorSystem::involved_entries`]), so entries over disjoint
    /// variables commute with unrelated shared accesses.
    fn entry_commutes_with(
        &self,
        state: &MonitorState,
        action: &MonitorAction,
        s: &StepClass,
    ) -> bool {
        match s {
            // A call emits `Req` on the lock element: its order against
            // the entry's `Acquire`/`Release` is part of the computation.
            StepClass::Call => false,
            StepClass::Event => true,
            // Entry reads are silent (no event), so a `Getval` commutes
            // unless the entry can change the value it observes.
            StepClass::Read(v) => self
                .involved_entries(state, action)
                .iter()
                .all(|&e| !self.entry_footprints[e].1.contains(v)),
            StepClass::Write { var, reads } => {
                self.involved_entries(state, action).iter().all(|&e| {
                    let (entry_reads, entry_writes) = &self.entry_footprints[e];
                    !entry_writes.contains(var)
                        && !entry_reads.contains(var)
                        && reads.iter().all(|r| !entry_writes.contains(r))
                })
            }
        }
    }

    /// Whether two script steps of *distinct* processes commute. Calls
    /// and local events carry pre-evaluated values and emit only on the
    /// acting process's own element (plus, for calls, the lock — handled
    /// by the `(Call, Call)` arm); shared accesses conflict exactly on
    /// variable overlap.
    fn steps_commute(s: &StepClass, t: &StepClass) -> bool {
        use StepClass::*;
        match (s, t) {
            // Request order on the lock element is observable.
            (Call, Call) => false,
            (Call | Event, _) | (_, Call | Event) => true,
            // Same variable ⇒ same element ⇒ the per-element event order
            // (and hence the canonical key) would change.
            (Read(v), Read(w)) => v != w,
            (Read(v), Write { var, .. }) | (Write { var, .. }, Read(v)) => v != var,
            (Write { var: v1, reads: r1 }, Write { var: v2, reads: r2 }) => {
                v1 != v2 && !r1.contains(v2.as_str()) && !r2.contains(v1.as_str())
            }
        }
    }

    /// The `[entry, pid]` event-parameter pair for `pid`'s current
    /// context — pre-materialized at build time (inside an entry:
    /// `[Str(entry_name), Int(pid)]`; outside: `[Str(""), Int(pid)]`).
    fn entry_param_pair(&self, state: &MonitorState, pid: usize) -> [Value; 2] {
        match state.procs[pid].entry {
            Some(i) => self.code.entry_params[i][pid].clone(),
            None => self.code.shared_params[pid].clone(),
        }
    }

    /// Compiled counterpart of [`MonitorSystem::run`]: executes `pid`'s
    /// flat entry program from its saved `pc` until it waits, hands off
    /// on a signal, or finishes. Event emission and state transitions
    /// mirror the interpreter statement for statement.
    fn run_c(&self, state: &mut MonitorState, pid: usize) {
        loop {
            let entry_idx = state.procs[pid].entry.expect("running inside an entry");
            let prog = &self.code.entries[entry_idx];
            let pc = state.procs[pid].pc as usize;
            match &prog.ops[pc] {
                MOp::Assign { gslot, el, expr } => {
                    let v = self
                        .code
                        .pool
                        .eval(*expr, &state.gslots, &state.procs[pid].lslots)
                        .unwrap_or_else(|e| panic!("monitor runtime error: {e}"));
                    state.gslots[*gslot as usize] = v.clone();
                    let pair = &self.code.entry_params[entry_idx][pid];
                    self.emit(
                        state,
                        Some(pid),
                        *el,
                        self.cls.assign,
                        vec![v, pair[0].clone(), pair[1].clone()],
                        &[],
                    );
                    state.procs[pid].pc = pc as u32 + 1;
                }
                MOp::AssignUnknown { name, expr } => {
                    // Interpreter order: the expression error (if any)
                    // surfaces before the unknown-variable panic.
                    let _ = self
                        .code
                        .pool
                        .eval(*expr, &state.gslots, &state.procs[pid].lslots)
                        .unwrap_or_else(|e| panic!("monitor runtime error: {e}"));
                    panic!("unknown variable {name:?}");
                }
                MOp::JumpIfFalse { cond, target, kind } => {
                    let b = self
                        .code
                        .pool
                        .eval(*cond, &state.gslots, &state.procs[pid].lslots)
                        .unwrap_or_else(|e| panic!("monitor runtime error: {e}"))
                        .as_bool()
                        .unwrap_or_else(|| panic!("{}", kind.expect_msg()));
                    state.procs[pid].pc = if b { pc as u32 + 1 } else { *target };
                }
                MOp::Jump(target) => state.procs[pid].pc = *target,
                MOp::Wait { cond, el } => {
                    let wait_ev = self.emit(
                        state,
                        Some(pid),
                        *el,
                        self.cls.wait,
                        vec![Value::Int(pid as i64)],
                        &[],
                    );
                    state.procs[pid].wait_event = Some(wait_ev);
                    self.emit(
                        state,
                        Some(pid),
                        self.lock_el,
                        self.cls.release,
                        vec![Value::Int(pid as i64)],
                        &[],
                    );
                    state
                        .queues
                        .get_mut(&self.code.conds[*cond as usize])
                        .expect("known condition")
                        .push_back(pid);
                    state.procs[pid].status = Status::Waiting;
                    // Resume point: the op after the WAIT.
                    state.procs[pid].pc = pc as u32 + 1;
                    state.lock = None;
                    self.pop_urgent(state);
                    return;
                }
                MOp::Signal { cond, el } => {
                    let sig = self.emit(
                        state,
                        Some(pid),
                        *el,
                        self.cls.signal,
                        vec![Value::Int(pid as i64)],
                        &[],
                    );
                    let cond_name = &self.code.conds[*cond as usize];
                    let waiter = state
                        .queues
                        .get_mut(cond_name)
                        .expect("known condition")
                        .pop_front();
                    state.procs[pid].pc = pc as u32 + 1;
                    if let Some(w) = waiter {
                        match self.program.semantics {
                            SignalSemantics::Hoare => {
                                state.urgent.push(pid);
                                state.procs[pid].status = Status::Urgent;
                                state.lock = Some(w);
                                state.procs[w].status = Status::Ready;
                                let mut extra = vec![sig];
                                if let Some(we) = state.procs[w].wait_event.take() {
                                    extra.push(we);
                                }
                                self.emit(
                                    state,
                                    Some(w),
                                    *el,
                                    self.cls.resume,
                                    vec![Value::Int(w as i64)],
                                    &extra,
                                );
                                self.run_c(state, w);
                                return;
                            }
                            SignalSemantics::Mesa => {
                                state.procs[w].status = Status::ReAcquire;
                                state.procs[w].pending_signal = Some(sig);
                                state.procs[w].resume_cond = Some(cond_name.clone());
                            }
                        }
                    }
                }
                MOp::JumpIfQueueEmpty { cond, target } => {
                    let nonempty = !state
                        .queues
                        .get(&self.code.conds[*cond as usize])
                        .expect("known condition")
                        .is_empty();
                    state.procs[pid].pc = if nonempty { pc as u32 + 1 } else { *target };
                }
                MOp::UnknownCond { name, queue_probe } => {
                    if *queue_probe {
                        // The interpreter's `queues.get(..).expect(..)`.
                        panic!("known condition");
                    }
                    panic!("unknown condition {name:?}");
                }
                MOp::End => {
                    self.finish_entry(state, pid);
                    return;
                }
            }
        }
    }

    fn finish_entry(&self, state: &mut MonitorState, pid: usize) {
        let entry_idx = state.procs[pid].entry.expect("finishing inside an entry");
        let entry_name = self.code.entry_params[entry_idx][pid][0].clone();
        self.emit(
            state,
            Some(pid),
            self.entry_els[entry_idx],
            self.cls.end,
            vec![Value::Int(pid as i64)],
            &[],
        );
        let rel = self.emit(
            state,
            Some(pid),
            self.lock_el,
            self.cls.release,
            vec![Value::Int(pid as i64)],
            &[],
        );
        self.emit(
            state,
            Some(pid),
            self.user_els[pid],
            self.cls.ret,
            vec![entry_name],
            &[],
        );
        let proc = &mut state.procs[pid];
        proc.entry = None;
        proc.locals = VarStore::new();
        proc.lslots.clear();
        proc.pc = 0;
        proc.script_pos += 1;
        proc.status = if proc.script_pos >= self.program.processes[pid].script.len() {
            Status::Done
        } else {
            Status::Ready
        };
        let _ = rel;
        state.lock = None;
        self.pop_urgent(state);
    }

    fn advance_script(&self, state: &mut MonitorState, pid: usize) {
        let proc = &mut state.procs[pid];
        proc.script_pos += 1;
        if proc.script_pos >= self.program.processes[pid].script.len() {
            proc.status = Status::Done;
        }
    }

    fn pop_urgent(&self, state: &mut MonitorState) {
        if let Some(s) = state.urgent.pop() {
            state.lock = Some(s);
            state.procs[s].status = Status::Ready;
            self.emit(
                state,
                Some(s),
                self.lock_el,
                self.cls.acquire,
                vec![Value::Int(s as i64)],
                &[],
            );
            if self.compiled {
                self.run_c(state, s);
            } else {
                self.run(state, s);
            }
        }
    }
}

impl System for MonitorSystem {
    type State = MonitorState;
    type Action = MonitorAction;
    type Checkpoint = MonitorCheckpoint;

    fn initial(&self) -> MonitorState {
        let mut state = MonitorState {
            builder: ComputationBuilder::new(self.structure_arc()),
            vars: VarStore::new(),
            gslots: if self.compiled {
                self.code.init_gslots.clone()
            } else {
                Vec::new()
            },
            procs: self
                .program
                .processes
                .iter()
                .map(|p| ProcRuntime {
                    script_pos: 0,
                    status: if p.script.is_empty() {
                        Status::Done
                    } else {
                        Status::Ready
                    },
                    frames: Vec::new(),
                    entry: None,
                    locals: VarStore::new(),
                    lslots: Vec::new(),
                    pc: 0,
                    pending_args: Vec::new(),
                    last: None,
                    wait_event: None,
                    pending_signal: None,
                    resume_cond: None,
                })
                .collect(),
            lock: None,
            init_done: None,
            urgent: Vec::new(),
            queues: self
                .program
                .monitor
                .conditions
                .iter()
                .map(|c| (c.clone(), VecDeque::new()))
                .collect(),
        };
        // Initialization code: an Init event followed by the initial
        // assignments. Monitor variables form one chain inside the
        // monitor (its tail enables the first acquisition); shared
        // variables form a separate chain off the Init event, since a
        // monitor-internal variable element may not enable events at a
        // top-level shared element's neighbours.
        let init_ev = self.emit(&mut state, None, self.init_el, self.cls.init, vec![], &[]);
        let mut last_internal = init_ev;
        let monitor_vars: Vec<(String, Value)> = self.program.monitor.vars.clone();
        for (name, value) in monitor_vars {
            if !self.compiled {
                state.vars.set(name.clone(), value.clone());
            }
            last_internal = self.emit(
                &mut state,
                None,
                self.var_element(&name),
                self.cls.assign,
                vec![value, Value::Str("init".into()), Value::Int(INIT_PID)],
                &[last_internal],
            );
        }
        let mut last_shared = init_ev;
        let shared_vars: Vec<(String, Value)> = self.program.shared_vars.clone();
        for (name, value) in shared_vars {
            if !self.compiled {
                state.vars.set(name.clone(), value.clone());
            }
            last_shared = self.emit(
                &mut state,
                None,
                self.var_element(&name),
                self.cls.assign,
                vec![value, Value::Str("init".into()), Value::Int(INIT_PID)],
                &[last_shared],
            );
        }
        state.init_done = Some(last_internal);
        state
    }

    fn enabled(&self, state: &MonitorState) -> Vec<MonitorAction> {
        let mut actions = Vec::new();
        for (pid, proc) in state.procs.iter().enumerate() {
            match proc.status {
                Status::Ready => actions.push(MonitorAction::Step(pid)),
                Status::Pending if state.lock.is_none() => {
                    actions.push(MonitorAction::Enter(pid));
                }
                Status::ReAcquire if state.lock.is_none() => {
                    actions.push(MonitorAction::Resume(pid));
                }
                _ => {}
            }
        }
        crate::explore::record_enabled_width(actions.len());
        actions
    }

    fn apply(&self, state: &mut MonitorState, action: &MonitorAction) {
        debug_assert!(state.lock.is_none(), "lock is free between actions");
        let t0 = crate::explore::apply_timer();
        match *action {
            MonitorAction::Step(pid) => {
                let pos = state.procs[pid].script_pos;
                match &self.program.processes[pid].script[pos] {
                    ScriptStep::Call { entry, args } => {
                        self.emit(
                            state,
                            Some(pid),
                            self.user_els[pid],
                            self.cls.call,
                            vec![Value::Str(entry.clone())],
                            &[],
                        );
                        self.emit(
                            state,
                            Some(pid),
                            self.lock_el,
                            self.cls.req,
                            vec![Value::Str(entry.clone()), Value::Int(pid as i64)],
                            &[],
                        );
                        state.procs[pid].pending_args = args.clone();
                        state.procs[pid].status = Status::Pending;
                    }
                    ScriptStep::Event { class, params } => {
                        let cid = self.class(class);
                        let params = params.clone();
                        self.emit(state, Some(pid), self.user_els[pid], cid, params, &[]);
                        self.advance_script(state, pid);
                    }
                    ScriptStep::ReadShared { var } => {
                        let (value, el) = if self.compiled {
                            let StepCode::Read { gslot, el } = self.code.steps[pid][pos] else {
                                unreachable!("step codes mirror the script");
                            };
                            (state.gslots[gslot as usize].clone(), el)
                        } else {
                            let value = state
                                .vars
                                .get(var)
                                .cloned()
                                .expect("shared variable initialized");
                            (value, self.var_element(var))
                        };
                        let [p_empty, p_pid] = self.code.shared_params[pid].clone();
                        self.emit(
                            state,
                            Some(pid),
                            el,
                            self.cls.getval,
                            vec![value, p_empty, p_pid],
                            &[],
                        );
                        self.advance_script(state, pid);
                    }
                    ScriptStep::WriteShared { var, value } => {
                        let (v, el) = if self.compiled {
                            let StepCode::Write { gslot, el, expr } = self.code.steps[pid][pos]
                            else {
                                unreachable!("step codes mirror the script");
                            };
                            let v = self
                                .code
                                .pool
                                .eval(expr, &state.gslots, &[])
                                .unwrap_or_else(|e| panic!("monitor runtime error: {e}"));
                            state.gslots[gslot as usize] = v.clone();
                            (v, el)
                        } else {
                            let env = self.eval_env(state, pid);
                            let v = value
                                .eval(&env)
                                .unwrap_or_else(|e| panic!("monitor runtime error: {e}"));
                            state.vars.set(var.clone(), v.clone());
                            (v, self.var_element(var))
                        };
                        let [p_empty, p_pid] = self.code.shared_params[pid].clone();
                        self.emit(
                            state,
                            Some(pid),
                            el,
                            self.cls.assign,
                            vec![v, p_empty, p_pid],
                            &[],
                        );
                        self.advance_script(state, pid);
                    }
                }
            }
            MonitorAction::Enter(pid) => {
                let ScriptStep::Call { entry, .. } =
                    self.program.processes[pid].script[state.procs[pid].script_pos].clone()
                else {
                    panic!("Enter on a non-call step");
                };
                let entry_idx = self
                    .program
                    .monitor
                    .entry_index(&entry)
                    .expect("validated at construction");
                state.lock = Some(pid);
                // Lock handoff is ordering, not causality: the acquire is
                // ordered after the previous release by the lock element
                // order; no enable edge is drawn across transactions. The
                // one genuine cross edge is initialization enabling the
                // very first acquisition.
                let extra: Vec<EventId> = state.init_done.take().into_iter().collect();
                self.emit(
                    state,
                    Some(pid),
                    self.lock_el,
                    self.cls.acquire,
                    vec![Value::Int(pid as i64)],
                    &extra,
                );
                self.emit(
                    state,
                    Some(pid),
                    self.entry_els[entry_idx],
                    self.cls.begin,
                    vec![Value::Int(pid as i64)],
                    &[],
                );
                let args = std::mem::take(&mut state.procs[pid].pending_args);
                if self.compiled {
                    let prog = &self.code.entries[entry_idx];
                    let mut lslots = vec![None; prog.params.len()];
                    // Positional bind; a short args list leaves trailing
                    // params unbound (the global scope shows through).
                    for (&slot, arg) in prog.param_slots.iter().zip(args) {
                        lslots[slot as usize] = Some(arg);
                    }
                    let proc = &mut state.procs[pid];
                    proc.lslots = lslots;
                    proc.pc = 0;
                    proc.entry = Some(entry_idx);
                    proc.status = Status::Ready; // running now
                    self.run_c(state, pid);
                } else {
                    let def = &self.program.monitor.entries[entry_idx];
                    let mut locals = VarStore::new();
                    for (param, arg) in def.params.iter().zip(args) {
                        locals.set(param.clone(), arg);
                    }
                    state.procs[pid].locals = locals;
                    state.procs[pid].entry = Some(entry_idx);
                    state.procs[pid].frames = vec![def.body.iter().cloned().collect()];
                    state.procs[pid].status = Status::Ready; // running now
                    self.run(state, pid);
                }
            }
            MonitorAction::Resume(pid) => {
                // Mesa re-acquisition: the waiter takes the free lock and
                // resumes after its WAIT (without re-checking anything —
                // the program text must use WHILE for that).
                debug_assert_eq!(self.program.semantics, SignalSemantics::Mesa);
                state.lock = Some(pid);
                self.emit(
                    state,
                    Some(pid),
                    self.lock_el,
                    self.cls.acquire,
                    vec![Value::Int(pid as i64)],
                    &[],
                );
                let cond = state.procs[pid]
                    .resume_cond
                    .take()
                    .expect("resuming from a condition");
                let mut extra = Vec::new();
                if let Some(sig) = state.procs[pid].pending_signal.take() {
                    extra.push(sig);
                }
                if let Some(we) = state.procs[pid].wait_event.take() {
                    extra.push(we);
                }
                state.procs[pid].status = Status::Ready;
                self.emit(
                    state,
                    Some(pid),
                    self.cond_element(&cond),
                    self.cls.resume,
                    vec![Value::Int(pid as i64)],
                    &extra,
                );
                if self.compiled {
                    self.run_c(state, pid);
                } else {
                    self.run(state, pid);
                }
            }
        }
        crate::explore::record_apply_ns(t0);
    }

    fn is_complete(&self, state: &MonitorState) -> bool {
        state.procs.iter().all(|p| p.status == Status::Done)
    }

    fn control_key(&self, state: &MonitorState) -> Option<u64> {
        let mut h = DefaultHasher::new();
        if self.compiled {
            // Slot order is a fixed function of the program, so hashing
            // slots positionally is as stable as hashing names. This key
            // only feeds `--prune` visited-set lookups; it need not match
            // the interpreted mode's key.
            for v in &state.gslots {
                format!("{v:?}").hash(&mut h);
            }
            for p in &state.procs {
                p.script_pos.hash(&mut h);
                p.status.hash(&mut h);
                p.entry.hash(&mut h);
                p.pc.hash(&mut h);
                format!("{:?}", p.lslots).hash(&mut h);
            }
        } else {
            for (n, v) in state.vars.iter() {
                n.hash(&mut h);
                format!("{v:?}").hash(&mut h);
            }
            for p in &state.procs {
                p.script_pos.hash(&mut h);
                p.status.hash(&mut h);
                p.entry.hash(&mut h);
                format!("{:?}", p.frames).hash(&mut h);
            }
        }
        state.lock.hash(&mut h);
        state.urgent.hash(&mut h);
        format!("{:?}", state.queues).hash(&mut h);
        Some(h.finish())
    }

    fn checkpoint(&self, state: &MonitorState) -> Option<MonitorCheckpoint> {
        Some(MonitorCheckpoint {
            mark: state.builder.mark(),
            vars: state.vars.clone(),
            gslots: state.gslots.clone(),
            procs: state.procs.clone(),
            lock: state.lock,
            init_done: state.init_done,
            urgent: state.urgent.clone(),
            queues: state.queues.clone(),
        })
    }

    fn undo(&self, state: &mut MonitorState, cp: MonitorCheckpoint) {
        let before = state.builder.event_count();
        state.builder.truncate_to(&cp.mark);
        crate::explore::record_undo_depth(before - state.builder.event_count());
        state.vars = cp.vars;
        state.gslots = cp.gslots;
        state.procs = cp.procs;
        state.lock = cp.lock;
        state.init_done = cp.init_done;
        state.urgent = cp.urgent;
        state.queues = cp.queues;
    }

    /// Independence oracle for sleep-set POR. Each process contributes at
    /// most one enabled action per state, so the two actions always
    /// belong to distinct processes; they commute when their
    /// commutativity classes touch disjoint elements and variables (see
    /// [`MonitorSystem::entry_commutes_with`] /
    /// [`MonitorSystem::steps_commute`]).
    fn trace_builder<'a>(&self, state: &'a MonitorState) -> Option<&'a ComputationBuilder> {
        // Every edge the simulation emits targets the event it just
        // added, so the builder satisfies the monotone-journal contract.
        Some(&state.builder)
    }

    fn independent(&self, state: &MonitorState, a: &MonitorAction, b: &MonitorAction) -> bool {
        let pid = |action: &MonitorAction| match *action {
            MonitorAction::Step(p) | MonitorAction::Enter(p) | MonitorAction::Resume(p) => p,
        };
        if pid(a) == pid(b) {
            return false;
        }
        match (self.action_class(state, a), self.action_class(state, b)) {
            // Two monitor executions serialize on the lock element.
            (ActionClass::Entry, ActionClass::Entry) => false,
            (ActionClass::Entry, ActionClass::Step(s)) => self.entry_commutes_with(state, a, s),
            (ActionClass::Step(s), ActionClass::Entry) => self.entry_commutes_with(state, b, s),
            (ActionClass::Step(s), ActionClass::Step(t)) => Self::steps_commute(s, t),
        }
    }
}

impl MonitorState {
    /// The number of events emitted so far.
    pub fn event_count(&self) -> usize {
        self.builder.event_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{find_deadlock, Explorer};
    use crate::monitor::def::{readers_writers_monitor, MonitorDef, ProcessDef};
    use crate::Expr;
    use gem_core::{check_legality, is_legal};
    use std::ops::ControlFlow;

    fn call(entry: &str) -> ScriptStep {
        ScriptStep::Call {
            entry: entry.into(),
            args: vec![],
        }
    }

    /// A counter monitor: one entry incrementing a variable.
    fn counter_program(n_procs: usize, incs_each: usize) -> MonitorProgram {
        let monitor = MonitorDef::new("Counter").var("count", 0i64).entry(
            "Inc",
            &[],
            vec![Stmt::assign("count", Expr::var("count").add(Expr::int(1)))],
        );
        let mut prog = MonitorProgram::new(monitor);
        for i in 0..n_procs {
            prog = prog.process(ProcessDef::new(
                format!("p{i}"),
                vec![call("Inc"); incs_each],
            ));
        }
        prog
    }

    #[test]
    fn counter_single_run() {
        let sys = MonitorSystem::new(counter_program(2, 2));
        let explorer = Explorer::default();
        let mut runs = 0;
        explorer.for_each_run(&sys, |state, _| {
            runs += 1;
            assert!(sys.is_complete(state));
            assert_eq!(sys.global(state, "count"), Some(&Value::Int(4)));
            ControlFlow::Continue(())
        });
        assert!(runs > 1, "multiple schedules explored: {runs}");
    }

    #[test]
    fn computations_are_legal() {
        let sys = MonitorSystem::new(counter_program(2, 1));
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).expect("acyclic");
            let violations = check_legality(&c);
            assert!(
                violations.is_empty(),
                "{:?}",
                violations
                    .iter()
                    .map(|v| v.describe(&c))
                    .collect::<Vec<_>>()
            );
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn monitor_events_mutually_exclusive_in_time() {
        // All Begin/End events are totally ordered by the temporal order —
        // the paper's "sequential execution of monitor entries".
        let sys = MonitorSystem::new(counter_program(3, 1));
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            let begins: Vec<_> = c.events_of_class(sys.class("Begin")).collect();
            let ends: Vec<_> = c.events_of_class(sys.class("End")).collect();
            let all: Vec<_> = begins.iter().chain(ends.iter()).copied().collect();
            for (i, &a) in all.iter().enumerate() {
                for &b in &all[i + 1..] {
                    assert!(
                        !c.concurrent(a, b),
                        "monitor-internal events must be ordered"
                    );
                }
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn wait_and_signal_produce_resume_chain() {
        // One-slot buffer style: consumer waits until producer signals.
        let monitor = MonitorDef::new("Gate")
            .var("ready", Value::Bool(false))
            .condition("go")
            .entry(
                "Open",
                &[],
                vec![Stmt::assign("ready", Expr::bool(true)), Stmt::signal("go")],
            )
            .entry(
                "Pass",
                &[],
                vec![Stmt::if_then(
                    Expr::var("ready").not(),
                    vec![Stmt::wait("go")],
                )],
            );
        let prog = MonitorProgram::new(monitor)
            .process(ProcessDef::new("consumer", vec![call("Pass")]))
            .process(ProcessDef::new("producer", vec![call("Open")]));
        let sys = MonitorSystem::new(prog);
        let mut saw_resume = false;
        Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state), "no deadlock");
            let c = sys.computation(state).unwrap();
            assert!(is_legal(&c));
            let resumes: Vec<_> = c.events_of_class(sys.class("Resume")).collect();
            if !resumes.is_empty() {
                saw_resume = true;
                // Resume is enabled by exactly one Signal (§8.2's Monitor
                // prerequisite).
                for &r in &resumes {
                    let signal_enablers = c
                        .enablers_of(r)
                        .iter()
                        .filter(|&&e| c.event(e).class() == sys.class("Signal"))
                        .count();
                    assert_eq!(signal_enablers, 1);
                }
            }
            ControlFlow::Continue(())
        });
        assert!(saw_resume, "some schedule makes the consumer wait");
    }

    #[test]
    fn deadlock_detected_when_nobody_signals() {
        let monitor = MonitorDef::new("Stuck")
            .var("ready", Value::Bool(false))
            .condition("go")
            .entry(
                "Pass",
                &[],
                vec![Stmt::if_then(
                    Expr::var("ready").not(),
                    vec![Stmt::wait("go")],
                )],
            );
        let prog =
            MonitorProgram::new(monitor).process(ProcessDef::new("consumer", vec![call("Pass")]));
        let sys = MonitorSystem::new(prog);
        let witness = find_deadlock(&sys, &Explorer::default());
        assert!(witness.is_some(), "waiting with no signaller deadlocks");
    }

    #[test]
    fn rw_monitor_runs_and_counts() {
        let prog = MonitorProgram::new(readers_writers_monitor())
            .process(ProcessDef::new(
                "r0",
                vec![call("StartRead"), call("EndRead")],
            ))
            .process(ProcessDef::new(
                "w0",
                vec![call("StartWrite"), call("EndWrite")],
            ));
        let sys = MonitorSystem::new(prog);
        let stats = Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state), "RW monitor must not deadlock");
            assert_eq!(sys.global(state, "readernum"), Some(&Value::Int(0)));
            ControlFlow::Continue(())
        });
        assert!(stats.runs >= 2, "read-first and write-first schedules");
        assert!(!stats.truncated());
    }

    #[test]
    fn entry_params_bound() {
        let monitor = MonitorDef::new("Store").var("x", 0i64).entry(
            "Set",
            &["v"],
            vec![Stmt::assign("x", Expr::var("v"))],
        );
        let prog = MonitorProgram::new(monitor).process(ProcessDef::new(
            "p",
            vec![ScriptStep::Call {
                entry: "Set".into(),
                args: vec![Value::Int(42)],
            }],
        ));
        let sys = MonitorSystem::new(prog);
        Explorer::default().for_each_run(&sys, |state, _| {
            assert_eq!(sys.global(state, "x"), Some(&Value::Int(42)));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn while_loop_executes() {
        let monitor = MonitorDef::new("Loop").var("x", 0i64).entry(
            "Count",
            &[],
            vec![Stmt::While(
                Expr::var("x").lt(Expr::int(3)),
                vec![Stmt::assign("x", Expr::var("x").add(Expr::int(1)))],
            )],
        );
        let prog = MonitorProgram::new(monitor).process(ProcessDef::new("p", vec![call("Count")]));
        let sys = MonitorSystem::new(prog);
        Explorer::default().for_each_run(&sys, |state, _| {
            assert_eq!(sys.global(state, "x"), Some(&Value::Int(3)));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn shared_variable_events_outside_monitor() {
        let monitor = MonitorDef::new("M").entry("Nop", &[], vec![]);
        let prog = MonitorProgram::new(monitor)
            .shared_var("data", 5i64)
            .process(ProcessDef::new(
                "p",
                vec![
                    ScriptStep::WriteShared {
                        var: "data".into(),
                        value: Expr::int(9),
                    },
                    ScriptStep::ReadShared { var: "data".into() },
                ],
            ));
        let sys = MonitorSystem::new(prog);
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            assert!(is_legal(&c));
            let getvals: Vec<_> = c.events_of_class(sys.class("Getval")).collect();
            assert_eq!(getvals.len(), 1);
            assert_eq!(c.event(getvals[0]).param(0), Some(&Value::Int(9)));
            ControlFlow::Continue(())
        });
    }

    #[test]
    #[should_panic(expected = "unknown entry")]
    fn unknown_entry_rejected_eagerly() {
        let monitor = MonitorDef::new("M").entry("E", &[], vec![]);
        let prog = MonitorProgram::new(monitor).process(ProcessDef::new("p", vec![call("Nope")]));
        let _ = MonitorSystem::new(prog);
    }

    /// Per-run event streams must be byte-identical between compiled and
    /// interpreted execution: same run order, same `Debug` rendering of
    /// every sealed computation (events, params, edges).
    #[test]
    fn compiled_matches_interpreted() {
        let programs = [
            counter_program(2, 2),
            MonitorProgram::new(readers_writers_monitor())
                .process(ProcessDef::new(
                    "r0",
                    vec![call("StartRead"), call("EndRead")],
                ))
                .process(ProcessDef::new(
                    "w0",
                    vec![call("StartWrite"), call("EndWrite")],
                )),
        ];
        for prog in programs {
            let mut renders: Vec<Vec<(u64, usize)>> = Vec::new();
            for on in [true, false] {
                let sys = MonitorSystem::new(prog.clone()).with_compile(on);
                let mut runs = Vec::new();
                Explorer::default().for_each_run(&sys, |state, _| {
                    let c = sys.computation(state).expect("acyclic");
                    runs.push((c.fingerprint(), state.event_count()));
                    ControlFlow::Continue(())
                });
                renders.push(runs);
            }
            assert_eq!(renders[0], renders[1]);
        }
    }

    /// Both modes agree on a waiting/signalling (Hoare handoff) program,
    /// where the compiled path parks and resumes via `pc` instead of
    /// statement frames.
    #[test]
    fn compiled_matches_interpreted_across_wait_signal() {
        let make = || {
            let monitor = MonitorDef::new("Gate")
                .var("ready", Value::Bool(false))
                .condition("go")
                .entry(
                    "Open",
                    &[],
                    vec![Stmt::assign("ready", Expr::bool(true)), Stmt::signal("go")],
                )
                .entry(
                    "Pass",
                    &[],
                    vec![Stmt::While(
                        Expr::var("ready").not(),
                        vec![Stmt::wait("go")],
                    )],
                );
            MonitorProgram::new(monitor)
                .process(ProcessDef::new("consumer", vec![call("Pass")]))
                .process(ProcessDef::new("producer", vec![call("Open")]))
        };
        let mut renders: Vec<Vec<(u64, usize)>> = Vec::new();
        for on in [true, false] {
            let sys = MonitorSystem::new(make()).with_compile(on);
            let mut runs = Vec::new();
            Explorer::default().for_each_run(&sys, |state, _| {
                let c = sys.computation(state).expect("acyclic");
                runs.push((c.fingerprint(), state.event_count()));
                ControlFlow::Continue(())
            });
            renders.push(runs);
        }
        assert_eq!(renders[0], renders[1]);
    }

    #[test]
    fn code_stats_populated() {
        let sys = MonitorSystem::new(counter_program(2, 1));
        let stats = sys.code_stats();
        assert!(stats.exprs >= 1, "{stats:?}");
        assert!(stats.ops >= 2, "{stats:?}");
        assert_eq!(stats.programs, 1, "{stats:?}");
        assert!(stats.slots >= 1, "{stats:?}");
    }

    #[test]
    fn lock_port_is_registered() {
        let sys = MonitorSystem::new(counter_program(1, 1));
        let s = sys.structure();
        let g = s.group("Counter").unwrap();
        assert!(s
            .group_info(g)
            .has_port(sys.lock_element(), sys.class("Req")));
    }
}
