//! # gem-lang — concurrency-language substrates for GEM
//!
//! Executable models of the three language primitives the paper describes
//! in GEM — the **Monitor** (§9), **CSP**, and **ADA tasking** — plus the
//! bounded interleaving [`Explorer`] used to enumerate their schedules.
//! Each substrate runs concrete programs and emits a
//! [`gem_core::Computation`] per schedule, over a structure that mirrors
//! the paper's GEM description of the primitive (monitor groups with
//! `PORTS(lock.Req)`, CSP input/output elements, ADA entry/rendezvous
//! elements).
//!
//! Together with `gem-verify`, this is the machine-checked stand-in for
//! the paper's hand-proof methodology: explore every schedule, translate
//! each run into a computation, and check the specification's
//! restrictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod explore;
mod par;

pub mod ada;
pub mod code;
pub mod csp;
pub mod monitor;

pub use ast::{BinOp, Expr, RuntimeError, VarStore};
pub use code::{CodeStats, CompileMode};
pub use explore::{find_deadlock, ExploreStats, Explorer, RunSample, System, TruncationReason};
