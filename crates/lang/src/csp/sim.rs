//! Execution of CSP programs into GEM computations.
//!
//! Event vocabulary per process `p`, following the paper's §8.2 sketch of
//! CSP input/output elements:
//!
//! | Element | Classes (params) |
//! |---------|------------------|
//! | `<p>.out` (the `!` element) | `OutReq(partner)`, `OutEnd(val, partner)` |
//! | `<p>.in` (the `?` element) | `InReq(partner)`, `InEnd(val, partner)` |
//! | `<p>.var.<v>` | `Assign(newval)` |
//!
//! Each process is a GEM group; the `OutEnd`/`InEnd` classes are its
//! ports, since an exchange enables them *across* process boundaries: for
//! a matched pair the edges are `OutReq ⊳ OutEnd`, `InReq ⊳ OutEnd`,
//! `InReq ⊳ InEnd`, `OutReq ⊳ InEnd` — which yields the paper's
//! simultaneity restriction `inp.req ⊳ out.end ⇔ out.req ⊳ inp.end`.
//!
//! Local computation is deterministic and private to each process (no
//! shared variables in CSP), so processes auto-run to their next
//! communication point; the only scheduler choices are *which matched
//! exchange happens next*. An `Alt` publishes a request event per open
//! branch (the offers); branches not chosen leave dangling requests that
//! never enable an `End` — CSP offer withdrawal.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use gem_core::{
    BuildError, BuilderMark, ClassId, Computation, ComputationBuilder, ElementId, EventId, NodeRef,
    Structure, Value,
};

use crate::ast::VarStore;
use crate::code::{CodeStats, CondKind, ExprId, ExprPool, SlotLayout};
use crate::csp::def::{AltBranch, Comm, CspProgram, CspStmt};
use crate::explore::System;
use std::time::Instant;

/// A compiled CSP program ready to execute.
#[derive(Clone, Debug)]
pub struct CspSystem {
    program: CspProgram,
    structure: Arc<Structure>,
    out_req: ClassId,
    out_end: ClassId,
    in_req: ClassId,
    in_end: ClassId,
    assign: ClassId,
    out_els: Vec<ElementId>,
    in_els: Vec<ElementId>,
    var_els: Vec<BTreeMap<String, ElementId>>,
    /// Compiled per-process programs (built unconditionally; `compiled`
    /// selects the execution path).
    code: Arc<CspCode>,
    /// Execute compiled programs (default) or the tree-walking
    /// interpreter (the differential oracle).
    compiled: bool,
}

/// Compiled form of a CSP program: slot-resolved per-process local
/// scopes, postfix expression code, flat statement programs, and
/// interned partner-name values.
#[derive(Clone, Debug)]
struct CspCode {
    pool: ExprPool,
    progs: Vec<CProg>,
    /// `Value::Str(process_name)` per process, cloned into `OutReq` /
    /// `InReq` / `OutEnd` / `InEnd` params instead of re-allocating the
    /// name on every emit (used by both execution modes).
    name_values: Vec<Value>,
    stats: CodeStats,
}

/// One process body as a flat program.
#[derive(Clone, Debug)]
struct CProg {
    ops: Vec<COp>,
    /// Local scope: declared locals plus every receive-target name (a
    /// receive may bind an undeclared name, which is then readable).
    locals: SlotLayout,
    /// Initial slot values (declared locals bound, receive-only slots
    /// unbound).
    init: Vec<Option<Value>>,
}

/// A compiled communication: everything `publish_offer` needs, plus the
/// continuation pc to resume at once the offer commits (replacing the
/// interpreter's cloned branch-body frames).
#[derive(Clone, Debug)]
struct CommTpl {
    is_send: bool,
    partner: usize,
    /// Send: the offered expression.
    expr: Option<ExprId>,
    /// Receive: the slot to bind.
    var_slot: Option<u32>,
    cont_pc: u32,
}

/// One guarded alternative arm.
#[derive(Clone, Debug)]
struct CAltArm {
    guard: Option<ExprId>,
    tpl: CommTpl,
}

/// One flat CSP instruction.
#[derive(Clone, Debug)]
enum COp {
    /// Evaluate and bind a declared local, emitting `Assign`.
    Assign {
        slot: u32,
        el: ElementId,
        expr: ExprId,
    },
    /// Assignment to an undeclared local: evaluate (surfacing expression
    /// errors first, like the interpreter), then panic.
    AssignUnknown {
        name: String,
        expr: ExprId,
    },
    /// `IF`/`WHILE` condition: fall through when true, jump when false.
    JumpIfFalse {
        cond: ExprId,
        target: u32,
        kind: CondKind,
    },
    Jump(u32),
    /// Block on a single communication offer.
    Comm(CommTpl),
    /// Block on the open arms of an alternative.
    Alt(Vec<CAltArm>),
    /// Body finished.
    End,
}

fn patch_cjump(ops: &mut [COp], at: usize, to: u32) {
    match &mut ops[at] {
        COp::JumpIfFalse { target, .. } | COp::Jump(target) => *target = to,
        other => unreachable!("patching non-jump {other:?}"),
    }
}

/// Interns every receive-target variable of `stmts` into `layout`, so
/// expression compilation sees a complete local scope up front (a read
/// before the receive binds stays an `UndefinedVariable` at evaluation,
/// exactly like the interpreter's absent key).
fn collect_recv_targets(stmts: &[CspStmt], layout: &mut SlotLayout) {
    for st in stmts {
        match st {
            CspStmt::Comm(Comm::Recv { var, .. }) => {
                layout.intern(var);
            }
            CspStmt::Comm(Comm::Send { .. }) | CspStmt::Assign(..) => {}
            CspStmt::Alt(branches) => {
                for b in branches {
                    if let Comm::Recv { var, .. } = &b.comm {
                        layout.intern(var);
                    }
                    collect_recv_targets(&b.body, layout);
                }
            }
            CspStmt::If(_, t, e) => {
                collect_recv_targets(t, layout);
                collect_recv_targets(e, layout);
            }
            CspStmt::While(_, b) => collect_recv_targets(b, layout),
        }
    }
}

/// Compiles one process body into a flat [`COp`] program.
struct CspCompiler<'a> {
    pool: &'a mut ExprPool,
    locals: &'a SlotLayout,
    /// Empty: CSP has no shared variables.
    globals: &'a SlotLayout,
    var_els: &'a BTreeMap<String, ElementId>,
    program: &'a CspProgram,
    ops: Vec<COp>,
}

impl CspCompiler<'_> {
    fn expr(&mut self, e: &crate::ast::Expr) -> ExprId {
        self.pool.compile(e, self.locals, self.globals)
    }

    fn comm_tpl(&mut self, comm: &Comm, cont_pc: u32) -> CommTpl {
        match comm {
            Comm::Send { to, expr } => CommTpl {
                is_send: true,
                partner: self.program.process_index(to).expect("validated"),
                expr: Some(self.expr(expr)),
                var_slot: None,
                cont_pc,
            },
            Comm::Recv { from, var } => CommTpl {
                is_send: false,
                partner: self.program.process_index(from).expect("validated"),
                expr: None,
                var_slot: Some(self.locals.get(var).expect("recv targets interned")),
                cont_pc,
            },
        }
    }

    fn compile(&mut self, stmts: &[CspStmt]) {
        for st in stmts {
            match st {
                CspStmt::Assign(var, expr) => {
                    let expr = self.expr(expr);
                    match (self.locals.get(var), self.var_els.get(var)) {
                        (Some(slot), Some(&el)) => {
                            self.ops.push(COp::Assign { slot, el, expr });
                        }
                        _ => self.ops.push(COp::AssignUnknown {
                            name: var.clone(),
                            expr,
                        }),
                    }
                }
                CspStmt::If(cond, then_branch, else_branch) => {
                    let cond = self.expr(cond);
                    let jf = self.ops.len();
                    self.ops.push(COp::JumpIfFalse {
                        cond,
                        target: 0,
                        kind: CondKind::If,
                    });
                    self.compile(then_branch);
                    if else_branch.is_empty() {
                        let end = self.ops.len() as u32;
                        patch_cjump(&mut self.ops, jf, end);
                    } else {
                        let j = self.ops.len();
                        self.ops.push(COp::Jump(0));
                        let else_start = self.ops.len() as u32;
                        patch_cjump(&mut self.ops, jf, else_start);
                        self.compile(else_branch);
                        let end = self.ops.len() as u32;
                        patch_cjump(&mut self.ops, j, end);
                    }
                }
                CspStmt::While(cond, body) => {
                    let head = self.ops.len() as u32;
                    let cond = self.expr(cond);
                    let jf = self.ops.len();
                    self.ops.push(COp::JumpIfFalse {
                        cond,
                        target: 0,
                        kind: CondKind::While,
                    });
                    self.compile(body);
                    self.ops.push(COp::Jump(head));
                    let end = self.ops.len() as u32;
                    patch_cjump(&mut self.ops, jf, end);
                }
                CspStmt::Comm(c) => {
                    let at = self.ops.len();
                    let tpl = self.comm_tpl(c, at as u32 + 1);
                    self.ops.push(COp::Comm(tpl));
                }
                CspStmt::Alt(branches) => {
                    let alt_idx = self.ops.len();
                    let arms: Vec<CAltArm> = branches
                        .iter()
                        .map(|b| CAltArm {
                            guard: b.guard.as_ref().map(|g| self.expr(g)),
                            tpl: self.comm_tpl(&b.comm, 0),
                        })
                        .collect();
                    self.ops.push(COp::Alt(arms));
                    // Branch-body regions follow the op; each ends with a
                    // jump to the common continuation. Empty bodies point
                    // straight at the continuation.
                    let mut body_starts: Vec<Option<u32>> = Vec::new();
                    let mut region_jumps = Vec::new();
                    for b in branches {
                        if b.body.is_empty() {
                            body_starts.push(None);
                            continue;
                        }
                        body_starts.push(Some(self.ops.len() as u32));
                        self.compile(&b.body);
                        region_jumps.push(self.ops.len());
                        self.ops.push(COp::Jump(0));
                    }
                    let cont = self.ops.len() as u32;
                    for j in region_jumps {
                        patch_cjump(&mut self.ops, j, cont);
                    }
                    let COp::Alt(arms) = &mut self.ops[alt_idx] else {
                        unreachable!("alt op at recorded index");
                    };
                    for (arm, start) in arms.iter_mut().zip(body_starts) {
                        arm.tpl.cont_pc = start.unwrap_or(cont);
                    }
                }
            }
        }
    }
}

/// A published communication offer of a blocked process.
#[derive(Clone, PartialEq, Debug)]
pub struct Offer {
    /// True for a send offer, false for a receive offer.
    pub is_send: bool,
    /// Partner process index.
    pub partner: usize,
    /// For sends: the value offered (evaluated at offer time).
    pub value: Option<Value>,
    /// For receives: the variable to bind.
    pub var: Option<String>,
    /// The request event published for this offer.
    pub req_event: EventId,
    /// Statements to run when this offer commits (alt branch body).
    /// Empty in compiled mode, which resumes at [`Offer::cont_pc`].
    pub body: Vec<CspStmt>,
    /// Compiled mode: pc to resume at when this offer commits.
    pub(crate) cont_pc: u32,
    /// Compiled mode: receive-target slot instead of [`Offer::var`].
    pub(crate) var_slot: Option<u32>,
}

#[derive(Clone, Debug)]
enum PStatus {
    Blocked(Vec<Offer>),
    Done,
}

#[derive(Clone, Debug)]
struct ProcState {
    locals: VarStore,
    frames: Vec<VecDeque<CspStmt>>,
    /// Compiled mode: slot-indexed locals (unbound = `None`).
    lslots: Vec<Option<Value>>,
    /// Compiled mode: program counter into the process's [`CProg`].
    pc: u32,
    status: PStatus,
    last: Option<EventId>,
}

/// Execution state of a CSP program.
#[derive(Clone, Debug)]
pub struct CspState {
    builder: ComputationBuilder,
    procs: Vec<ProcState>,
    /// Shared handle to the compiled code, so accessors can translate
    /// names to slots without the system in hand.
    code: Arc<CspCode>,
    compiled: bool,
}

/// Rollback record for the exploration fast path: the per-process control
/// state is snapshotted wholesale, while the accumulated trace rolls back
/// through a [`BuilderMark`].
#[derive(Clone, Debug)]
pub struct CspCheckpoint {
    mark: BuilderMark,
    procs: Vec<ProcState>,
}

/// A scheduler choice: commit a matched exchange.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CspAction {
    /// Sending process index.
    pub sender: usize,
    /// Index of the send offer within the sender's offers.
    pub send_offer: usize,
    /// Receiving process index.
    pub receiver: usize,
    /// Index of the receive offer within the receiver's offers.
    pub recv_offer: usize,
}

impl CspSystem {
    /// Compiles `program`: builds one GEM group per process with `in`,
    /// `out`, and variable elements, end-classes as ports.
    ///
    /// # Panics
    ///
    /// Panics if a communication names an unknown partner process.
    pub fn new(program: CspProgram) -> Self {
        let mut s = Structure::new();
        let out_req = s.add_class("OutReq", &["partner"]).expect("fresh class");
        let out_end = s
            .add_class("OutEnd", &["val", "partner"])
            .expect("fresh class");
        let in_req = s.add_class("InReq", &["partner"]).expect("fresh class");
        let in_end = s
            .add_class("InEnd", &["val", "partner"])
            .expect("fresh class");
        let assign = s.add_class("Assign", &["newval"]).expect("fresh class");

        let mut out_els = Vec::new();
        let mut in_els = Vec::new();
        let mut var_els = Vec::new();
        for p in &program.processes {
            let out_el = s
                .add_element(format!("{}.out", p.name), &[out_req, out_end])
                .expect("out element");
            let in_el = s
                .add_element(format!("{}.in", p.name), &[in_req, in_end])
                .expect("in element");
            let mut vars = BTreeMap::new();
            let mut members: Vec<NodeRef> = vec![out_el.into(), in_el.into()];
            for (v, _) in &p.locals {
                let el = s
                    .add_element(format!("{}.var.{v}", p.name), &[assign])
                    .expect("var element");
                vars.insert(v.clone(), el);
                members.push(el.into());
            }
            let g = s
                .add_group(p.name.clone(), &members)
                .expect("process group");
            s.add_port(g, out_el, out_end).expect("out port");
            s.add_port(g, in_el, in_end).expect("in port");
            out_els.push(out_el);
            in_els.push(in_el);
            var_els.push(vars);
        }

        // Validate partner names eagerly.
        fn check_stmts(program: &CspProgram, pname: &str, stmts: &[CspStmt]) {
            for st in stmts {
                match st {
                    CspStmt::Comm(c) => check_comm(program, pname, c),
                    CspStmt::Alt(branches) => {
                        for b in branches {
                            check_comm(program, pname, &b.comm);
                            check_stmts(program, pname, &b.body);
                        }
                    }
                    CspStmt::If(_, t, e) => {
                        check_stmts(program, pname, t);
                        check_stmts(program, pname, e);
                    }
                    CspStmt::While(_, b) => check_stmts(program, pname, b),
                    CspStmt::Assign(..) => {}
                }
            }
        }
        fn check_comm(program: &CspProgram, pname: &str, c: &Comm) {
            let partner = match c {
                Comm::Send { to, .. } => to,
                Comm::Recv { from, .. } => from,
            };
            assert!(
                program.process_index(partner).is_some(),
                "process {pname:?} communicates with unknown process {partner:?}"
            );
        }
        for p in &program.processes {
            check_stmts(&program, &p.name, &p.body);
        }

        // Compile: slot-resolve each process's locals and flatten its body
        // into a jump-threaded program over a shared expression pool.
        let t0 = Instant::now();
        let empty = SlotLayout::new();
        let mut pool = ExprPool::default();
        let mut progs = Vec::with_capacity(program.processes.len());
        for (pid, p) in program.processes.iter().enumerate() {
            let mut locals = SlotLayout::new();
            for (n, _) in &p.locals {
                locals.intern(n);
            }
            collect_recv_targets(&p.body, &mut locals);
            let mut init = vec![None; locals.len()];
            for (n, v) in &p.locals {
                init[locals.get(n).expect("interned") as usize] = Some(v.clone());
            }
            let mut c = CspCompiler {
                pool: &mut pool,
                locals: &locals,
                globals: &empty,
                var_els: &var_els[pid],
                program: &program,
                ops: Vec::new(),
            };
            c.compile(&p.body);
            let mut ops = c.ops;
            ops.push(COp::End);
            progs.push(CProg { ops, locals, init });
        }
        let name_values: Vec<Value> = program
            .processes
            .iter()
            .map(|p| Value::Str(p.name.clone()))
            .collect();
        let stats = CodeStats {
            exprs: pool.expr_count() as u64,
            ops: (pool.op_count() + progs.iter().map(|p| p.ops.len()).sum::<usize>()) as u64,
            consts: pool.const_count() as u64,
            programs: progs.len() as u64,
            slots: progs.iter().map(|p| p.locals.len()).sum::<usize>() as u64,
            compile_ns: t0.elapsed().as_nanos() as u64,
        };
        let code = Arc::new(CspCode {
            pool,
            progs,
            name_values,
            stats,
        });

        Self {
            program,
            structure: Arc::new(s),
            out_req,
            out_end,
            in_req,
            in_end,
            assign,
            out_els,
            in_els,
            var_els,
            code,
            compiled: true,
        }
    }

    /// Switch between compiled execution (default) and the tree-walking
    /// interpreter.
    pub fn set_compile(&mut self, on: bool) {
        self.compiled = on;
    }

    /// Builder-style [`CspSystem::set_compile`].
    #[must_use]
    pub fn with_compile(mut self, on: bool) -> Self {
        self.set_compile(on);
        self
    }

    /// Compilation statistics for this system's [code](crate::code).
    pub fn code_stats(&self) -> CodeStats {
        self.code.stats
    }

    /// The program being executed.
    pub fn program(&self) -> &CspProgram {
        &self.program
    }

    /// The GEM structure of this system's computations.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Shared handle to the structure.
    pub fn structure_arc(&self) -> Arc<Structure> {
        Arc::clone(&self.structure)
    }

    /// Class id by name (`"OutReq"`, `"OutEnd"`, `"InReq"`, `"InEnd"`,
    /// `"Assign"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn class(&self, name: &str) -> ClassId {
        match name {
            "OutReq" => self.out_req,
            "OutEnd" => self.out_end,
            "InReq" => self.in_req,
            "InEnd" => self.in_end,
            "Assign" => self.assign,
            other => panic!("unknown CSP class {other:?}"),
        }
    }

    /// The `!` element of process `pid`.
    pub fn out_element(&self, pid: usize) -> ElementId {
        self.out_els[pid]
    }

    /// The `?` element of process `pid`.
    pub fn in_element(&self, pid: usize) -> ElementId {
        self.in_els[pid]
    }

    /// Seals the computation accumulated in `state`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] only on a simulator bug (cyclic trace).
    pub fn computation(&self, state: &CspState) -> Result<Computation, BuildError> {
        state.builder.seal_ref()
    }

    fn emit(
        &self,
        state: &mut CspState,
        pid: usize,
        element: ElementId,
        class: ClassId,
        params: Vec<Value>,
        extra: &[EventId],
    ) -> EventId {
        let e = state
            .builder
            .add_event(element, class, params)
            .expect("ids are from this structure");
        if let Some(last) = state.procs[pid].last {
            state.builder.enable(last, e).expect("known events");
        }
        state.procs[pid].last = Some(e);
        for &x in extra {
            state.builder.enable(x, e).expect("known events");
        }
        e
    }

    /// Runs process `pid` until it blocks at a communication point or
    /// finishes, publishing offer request events at the block.
    fn run(&self, state: &mut CspState, pid: usize) {
        loop {
            while matches!(state.procs[pid].frames.last(), Some(f) if f.is_empty()) {
                state.procs[pid].frames.pop();
            }
            let Some(stmt) = state.procs[pid]
                .frames
                .last_mut()
                .and_then(VecDeque::pop_front)
            else {
                state.procs[pid].status = PStatus::Done;
                return;
            };
            match stmt {
                CspStmt::Assign(var, expr) => {
                    let v = expr
                        .eval(&state.procs[pid].locals)
                        .unwrap_or_else(|e| panic!("CSP runtime error: {e}"));
                    state.procs[pid].locals.set(var.clone(), v.clone());
                    let el = *self.var_els[pid]
                        .get(&var)
                        .unwrap_or_else(|| panic!("undeclared local {var:?}"));
                    self.emit(state, pid, el, self.assign, vec![v], &[]);
                }
                CspStmt::If(cond, t, e) => {
                    let b = cond
                        .eval(&state.procs[pid].locals)
                        .unwrap_or_else(|e| panic!("CSP runtime error: {e}"))
                        .as_bool()
                        .expect("IF condition must be boolean");
                    state.procs[pid]
                        .frames
                        .push(if b { t } else { e }.into_iter().collect());
                }
                CspStmt::While(cond, body) => {
                    let b = cond
                        .eval(&state.procs[pid].locals)
                        .unwrap_or_else(|e| panic!("CSP runtime error: {e}"))
                        .as_bool()
                        .expect("WHILE condition must be boolean");
                    if b {
                        let mut frame: VecDeque<CspStmt> = body.iter().cloned().collect();
                        frame.push_back(CspStmt::While(cond, body));
                        state.procs[pid].frames.push(frame);
                    }
                }
                CspStmt::Comm(c) => {
                    let offer = self.publish_offer(state, pid, &c, Vec::new());
                    state.procs[pid].status = PStatus::Blocked(vec![offer]);
                    return;
                }
                CspStmt::Alt(branches) => {
                    let mut offers = Vec::new();
                    for AltBranch { guard, comm, body } in branches {
                        let open = match &guard {
                            None => true,
                            Some(g) => g
                                .eval(&state.procs[pid].locals)
                                .unwrap_or_else(|e| panic!("CSP runtime error: {e}"))
                                .as_bool()
                                .expect("guard must be boolean"),
                        };
                        if open {
                            offers.push(self.publish_offer(state, pid, &comm, body));
                        }
                    }
                    assert!(
                        !offers.is_empty(),
                        "alternative with all guards closed (process {:?})",
                        self.program.processes[pid].name
                    );
                    state.procs[pid].status = PStatus::Blocked(offers);
                    return;
                }
            }
        }
    }

    fn publish_offer(
        &self,
        state: &mut CspState,
        pid: usize,
        comm: &Comm,
        body: Vec<CspStmt>,
    ) -> Offer {
        match comm {
            Comm::Send { to, expr } => {
                let partner = self.program.process_index(to).expect("validated");
                let value = expr
                    .eval(&state.procs[pid].locals)
                    .unwrap_or_else(|e| panic!("CSP runtime error: {e}"));
                let req = self.emit(
                    state,
                    pid,
                    self.out_els[pid],
                    self.out_req,
                    vec![self.code.name_values[partner].clone()],
                    &[],
                );
                Offer {
                    is_send: true,
                    partner,
                    value: Some(value),
                    var: None,
                    req_event: req,
                    body,
                    cont_pc: 0,
                    var_slot: None,
                }
            }
            Comm::Recv { from, var } => {
                let partner = self.program.process_index(from).expect("validated");
                let req = self.emit(
                    state,
                    pid,
                    self.in_els[pid],
                    self.in_req,
                    vec![self.code.name_values[partner].clone()],
                    &[],
                );
                Offer {
                    is_send: false,
                    partner,
                    value: None,
                    var: Some(var.clone()),
                    req_event: req,
                    body,
                    cont_pc: 0,
                    var_slot: None,
                }
            }
        }
    }

    fn eval_c(&self, state: &CspState, pid: usize, id: ExprId) -> Value {
        self.code
            .pool
            .eval(id, &[], &state.procs[pid].lslots)
            .unwrap_or_else(|e| panic!("CSP runtime error: {e}"))
    }

    /// Compiled counterpart of [`CspSystem::run`]: steps the flat program
    /// until it blocks at a `Comm`/`Alt` (pc parked on the op; `apply`
    /// resumes at the committed offer's `cont_pc`) or hits `End`.
    fn run_c(&self, state: &mut CspState, pid: usize) {
        let prog = &self.code.progs[pid];
        let mut pc = state.procs[pid].pc as usize;
        loop {
            match &prog.ops[pc] {
                COp::Assign { slot, el, expr } => {
                    let v = self.eval_c(state, pid, *expr);
                    state.procs[pid].lslots[*slot as usize] = Some(v.clone());
                    self.emit(state, pid, *el, self.assign, vec![v], &[]);
                    pc += 1;
                }
                COp::AssignUnknown { name, expr } => {
                    // Evaluate first so expression errors surface exactly
                    // like the interpreter's eval-then-lookup order.
                    let _ = self.eval_c(state, pid, *expr);
                    panic!("undeclared local {name:?}");
                }
                COp::JumpIfFalse { cond, target, kind } => {
                    let b = self
                        .eval_c(state, pid, *cond)
                        .as_bool()
                        .unwrap_or_else(|| panic!("{}", kind.expect_msg()));
                    pc = if b { pc + 1 } else { *target as usize };
                }
                COp::Jump(t) => pc = *t as usize,
                COp::Comm(tpl) => {
                    let offer = self.publish_offer_c(state, pid, tpl);
                    state.procs[pid].pc = pc as u32;
                    state.procs[pid].status = PStatus::Blocked(vec![offer]);
                    return;
                }
                COp::Alt(arms) => {
                    let mut offers = Vec::new();
                    for arm in arms {
                        let open = match arm.guard {
                            None => true,
                            Some(g) => self
                                .eval_c(state, pid, g)
                                .as_bool()
                                .expect("guard must be boolean"),
                        };
                        if open {
                            offers.push(self.publish_offer_c(state, pid, &arm.tpl));
                        }
                    }
                    assert!(
                        !offers.is_empty(),
                        "alternative with all guards closed (process {:?})",
                        self.program.processes[pid].name
                    );
                    state.procs[pid].pc = pc as u32;
                    state.procs[pid].status = PStatus::Blocked(offers);
                    return;
                }
                COp::End => {
                    state.procs[pid].pc = pc as u32;
                    state.procs[pid].status = PStatus::Done;
                    return;
                }
            }
        }
    }

    /// Compiled counterpart of [`CspSystem::publish_offer`]: no statement
    /// clones, no name re-allocation — the offer carries a resume pc.
    fn publish_offer_c(&self, state: &mut CspState, pid: usize, tpl: &CommTpl) -> Offer {
        if tpl.is_send {
            let value = self.eval_c(state, pid, tpl.expr.expect("send offer has expr"));
            let req = self.emit(
                state,
                pid,
                self.out_els[pid],
                self.out_req,
                vec![self.code.name_values[tpl.partner].clone()],
                &[],
            );
            Offer {
                is_send: true,
                partner: tpl.partner,
                value: Some(value),
                var: None,
                req_event: req,
                body: Vec::new(),
                cont_pc: tpl.cont_pc,
                var_slot: None,
            }
        } else {
            let req = self.emit(
                state,
                pid,
                self.in_els[pid],
                self.in_req,
                vec![self.code.name_values[tpl.partner].clone()],
                &[],
            );
            Offer {
                is_send: false,
                partner: tpl.partner,
                value: None,
                var: None,
                req_event: req,
                body: Vec::new(),
                cont_pc: tpl.cont_pc,
                var_slot: tpl.var_slot,
            }
        }
    }
}

impl System for CspSystem {
    type State = CspState;
    type Action = CspAction;
    type Checkpoint = CspCheckpoint;

    fn initial(&self) -> CspState {
        let mut state = CspState {
            builder: ComputationBuilder::new(self.structure_arc()),
            procs: self
                .program
                .processes
                .iter()
                .enumerate()
                .map(|(pid, p)| ProcState {
                    locals: if self.compiled {
                        VarStore::default()
                    } else {
                        p.locals
                            .iter()
                            .map(|(n, v)| (n.clone(), v.clone()))
                            .collect()
                    },
                    frames: if self.compiled {
                        Vec::new()
                    } else {
                        vec![p.body.iter().cloned().collect()]
                    },
                    lslots: if self.compiled {
                        self.code.progs[pid].init.clone()
                    } else {
                        Vec::new()
                    },
                    pc: 0,
                    status: PStatus::Done, // set by run below
                    last: None,
                })
                .collect(),
            code: Arc::clone(&self.code),
            compiled: self.compiled,
        };
        for pid in 0..self.program.processes.len() {
            if self.compiled {
                self.run_c(&mut state, pid);
            } else {
                self.run(&mut state, pid);
            }
        }
        state
    }

    fn enabled(&self, state: &CspState) -> Vec<CspAction> {
        let mut actions = Vec::new();
        for (p, ps) in state.procs.iter().enumerate() {
            let PStatus::Blocked(p_offers) = &ps.status else {
                continue;
            };
            for (si, so) in p_offers.iter().enumerate() {
                if !so.is_send {
                    continue;
                }
                let q = so.partner;
                if q == p {
                    // Self-communication can never complete in CSP.
                    continue;
                }
                let PStatus::Blocked(q_offers) = &state.procs[q].status else {
                    continue;
                };
                for (ri, ro) in q_offers.iter().enumerate() {
                    if !ro.is_send && ro.partner == p {
                        actions.push(CspAction {
                            sender: p,
                            send_offer: si,
                            receiver: q,
                            recv_offer: ri,
                        });
                    }
                }
            }
        }
        crate::explore::record_enabled_width(actions.len());
        actions
    }

    fn apply(&self, state: &mut CspState, action: &CspAction) {
        let t0 = crate::explore::apply_timer();
        let (p, q) = (action.sender, action.receiver);
        let PStatus::Blocked(p_offers) =
            std::mem::replace(&mut state.procs[p].status, PStatus::Done)
        else {
            panic!("sender not blocked");
        };
        let PStatus::Blocked(q_offers) =
            std::mem::replace(&mut state.procs[q].status, PStatus::Done)
        else {
            panic!("receiver not blocked");
        };
        // Take the committed offers by index — the rest of each vector
        // (withdrawn offers) is dropped, never cloned.
        let mut p_offers = p_offers;
        let mut q_offers = q_offers;
        let so = p_offers.swap_remove(action.send_offer);
        let ro = q_offers.swap_remove(action.recv_offer);
        let value = so.value.expect("send offer carries a value");

        // The exchange: OutEnd enabled by {OutReq (chain), InReq}; InEnd
        // enabled by {InReq (chain), OutReq} — the paper's simultaneity.
        self.emit(
            state,
            p,
            self.out_els[p],
            self.out_end,
            vec![value.clone(), self.code.name_values[q].clone()],
            &[ro.req_event],
        );
        self.emit(
            state,
            q,
            self.in_els[q],
            self.in_end,
            vec![value.clone(), self.code.name_values[p].clone()],
            &[so.req_event],
        );
        if self.compiled {
            if let Some(slot) = ro.var_slot {
                state.procs[q].lslots[slot as usize] = Some(value);
            }
            state.procs[p].pc = so.cont_pc;
            state.procs[q].pc = ro.cont_pc;
            self.run_c(state, p);
            self.run_c(state, q);
        } else {
            if let Some(var) = &ro.var {
                state.procs[q].locals.set(var.clone(), value);
            }
            if !so.body.is_empty() {
                state.procs[p].frames.push(so.body.into_iter().collect());
            }
            if !ro.body.is_empty() {
                state.procs[q].frames.push(ro.body.into_iter().collect());
            }
            self.run(state, p);
            self.run(state, q);
        }
        crate::explore::record_apply_ns(t0);
    }

    fn is_complete(&self, state: &CspState) -> bool {
        state
            .procs
            .iter()
            .all(|p| matches!(p.status, PStatus::Done))
    }

    fn control_key(&self, state: &CspState) -> Option<u64> {
        let mut h = DefaultHasher::new();
        for p in &state.procs {
            if self.compiled {
                // Slot-indexed locals plus pc key control state exactly;
                // no name or statement-tree hashing in the hot path.
                format!("{:?}", p.lslots).hash(&mut h);
                p.pc.hash(&mut h);
            } else {
                for (n, v) in p.locals.iter() {
                    n.hash(&mut h);
                    format!("{v:?}").hash(&mut h);
                }
                format!("{:?}", p.frames).hash(&mut h);
            }
            match &p.status {
                PStatus::Done => 0u8.hash(&mut h),
                PStatus::Blocked(offers) => {
                    1u8.hash(&mut h);
                    offers.len().hash(&mut h);
                }
            }
        }
        Some(h.finish())
    }

    fn checkpoint(&self, state: &CspState) -> Option<CspCheckpoint> {
        Some(CspCheckpoint {
            mark: state.builder.mark(),
            procs: state.procs.clone(),
        })
    }

    fn undo(&self, state: &mut CspState, cp: CspCheckpoint) {
        let before = state.builder.event_count();
        state.builder.truncate_to(&cp.mark);
        crate::explore::record_undo_depth(before - state.builder.event_count());
        state.procs = cp.procs;
    }

    /// Independence oracle for sleep-set POR: two exchanges commute iff
    /// their endpoint sets are disjoint. An exchange touches exactly its
    /// two participants — their `<p>.out`/`<p>.in`/`<p>.var.*` elements,
    /// offer sets, and continuations — so disjoint endpoints mean
    /// disjoint state and disjoint element footprints, while a shared
    /// endpoint consumes that process's offer set (each exchange disables
    /// the other). Offer *indices* stay valid across an independent
    /// exchange because untouched processes keep their offer vectors.
    fn trace_builder<'a>(&self, state: &'a CspState) -> Option<&'a ComputationBuilder> {
        Some(&state.builder)
    }

    fn independent(&self, _state: &CspState, a: &CspAction, b: &CspAction) -> bool {
        a.sender != b.sender
            && a.sender != b.receiver
            && a.receiver != b.sender
            && a.receiver != b.receiver
    }
}

impl CspState {
    /// The number of events emitted so far.
    pub fn event_count(&self) -> usize {
        self.builder.event_count()
    }

    /// The offers currently published by process `pid` (empty when
    /// running or done).
    pub fn offers(&self, pid: usize) -> &[Offer] {
        match &self.procs[pid].status {
            PStatus::Blocked(o) => o,
            PStatus::Done => &[],
        }
    }

    /// A local variable of process `pid`.
    pub fn local(&self, pid: usize, var: &str) -> Option<&Value> {
        if self.compiled {
            let slot = self.code.progs[pid].locals.get(var)?;
            self.procs[pid].lslots[slot as usize].as_ref()
        } else {
            self.procs[pid].locals.get(var)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::def::CspProcess;
    use crate::explore::{find_deadlock, Explorer};
    use crate::Expr;
    use gem_core::is_legal;
    use std::ops::ControlFlow;

    fn ping_pong() -> CspProgram {
        CspProgram::new()
            .process(
                CspProcess::new(
                    "ping",
                    vec![
                        CspStmt::send("pong", Expr::int(7)),
                        CspStmt::recv("pong", "reply"),
                    ],
                )
                .local("reply", 0i64),
            )
            .process(
                CspProcess::new(
                    "pong",
                    vec![
                        CspStmt::recv("ping", "x"),
                        CspStmt::send("ping", Expr::var("x").add(Expr::int(1))),
                    ],
                )
                .local("x", 0i64),
            )
    }

    #[test]
    fn ping_pong_exchanges_values() {
        let sys = CspSystem::new(ping_pong());
        let stats = Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state));
            assert_eq!(state.local(1, "x"), Some(&Value::Int(7)));
            assert_eq!(state.local(0, "reply"), Some(&Value::Int(8)));
            ControlFlow::Continue(())
        });
        assert_eq!(stats.runs, 1, "fully deterministic exchange order");
    }

    #[test]
    fn computations_are_legal_and_paired() {
        let sys = CspSystem::new(ping_pong());
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            assert!(is_legal(&c), "{:?}", gem_core::check_legality(&c));
            // Cross edges: each OutEnd enabled by an InReq and vice versa.
            for oe in c.events_of_class(sys.class("OutEnd")) {
                assert!(c
                    .enablers_of(oe)
                    .iter()
                    .any(|&e| c.event(e).class() == sys.class("InReq")));
                assert!(c
                    .enablers_of(oe)
                    .iter()
                    .any(|&e| c.event(e).class() == sys.class("OutReq")));
            }
            for ie in c.events_of_class(sys.class("InEnd")) {
                assert!(c
                    .enablers_of(ie)
                    .iter()
                    .any(|&e| c.event(e).class() == sys.class("OutReq")));
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn mismatched_processes_deadlock() {
        let prog = CspProgram::new()
            .process(
                CspProcess::new("a", vec![CspStmt::recv("b", "x")].into_iter().collect())
                    .local("x", 0i64),
            )
            .process(CspProcess::new("b", vec![CspStmt::recv("a", "y")]).local("y", 0i64));
        let sys = CspSystem::new(prog);
        assert!(find_deadlock(&sys, &Explorer::default()).is_some());
    }

    #[test]
    fn alt_allows_either_order() {
        // A merger accepting one value from each of two producers, in
        // either order, via guarded alternatives.
        let merger = CspProcess::new(
            "m",
            vec![CspStmt::Alt(vec![
                AltBranch {
                    guard: None,
                    comm: Comm::Recv {
                        from: "p1".into(),
                        var: "a".into(),
                    },
                    body: vec![CspStmt::recv("p2", "b")],
                },
                AltBranch {
                    guard: None,
                    comm: Comm::Recv {
                        from: "p2".into(),
                        var: "b".into(),
                    },
                    body: vec![CspStmt::recv("p1", "a")],
                },
            ])],
        )
        .local("a", 0i64)
        .local("b", 0i64);
        let prog = CspProgram::new()
            .process(merger)
            .process(CspProcess::new(
                "p1",
                vec![CspStmt::send("m", Expr::int(1))],
            ))
            .process(CspProcess::new(
                "p2",
                vec![CspStmt::send("m", Expr::int(2))],
            ));
        let sys = CspSystem::new(prog);
        let stats = Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state), "alt must not deadlock");
            assert_eq!(state.local(0, "a"), Some(&Value::Int(1)));
            assert_eq!(state.local(0, "b"), Some(&Value::Int(2)));
            ControlFlow::Continue(())
        });
        assert_eq!(stats.runs, 2, "two commit orders");
    }

    #[test]
    fn closed_guards_filtered() {
        let prog = CspProgram::new()
            .process(
                CspProcess::new(
                    "m",
                    vec![CspStmt::Alt(vec![
                        AltBranch {
                            guard: Some(Expr::bool(false)),
                            comm: Comm::Recv {
                                from: "p".into(),
                                var: "x".into(),
                            },
                            body: vec![CspStmt::assign("x", Expr::int(99))],
                        },
                        AltBranch {
                            guard: Some(Expr::bool(true)),
                            comm: Comm::Recv {
                                from: "p".into(),
                                var: "x".into(),
                            },
                            body: vec![],
                        },
                    ])],
                )
                .local("x", 0i64),
            )
            .process(CspProcess::new("p", vec![CspStmt::send("m", Expr::int(5))]));
        let sys = CspSystem::new(prog);
        Explorer::default().for_each_run(&sys, |state, _| {
            assert_eq!(state.local(0, "x"), Some(&Value::Int(5)));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn local_loops_and_ifs() {
        let prog = CspProgram::new()
            .process(
                CspProcess::new(
                    "w",
                    vec![
                        CspStmt::While(
                            Expr::var("i").lt(Expr::int(3)),
                            vec![CspStmt::assign("i", Expr::var("i").add(Expr::int(1)))],
                        ),
                        CspStmt::If(
                            Expr::var("i").eq(Expr::int(3)),
                            vec![CspStmt::send("sink", Expr::var("i"))],
                            vec![],
                        ),
                    ],
                )
                .local("i", 0i64),
            )
            .process(CspProcess::new("sink", vec![CspStmt::recv("w", "got")]).local("got", 0i64));
        let sys = CspSystem::new(prog);
        Explorer::default().for_each_run(&sys, |state, _| {
            assert_eq!(state.local(1, "got"), Some(&Value::Int(3)));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn state_accessors() {
        let sys = CspSystem::new(ping_pong());
        let state = sys.initial();
        // Both processes publish their first offers at start.
        assert_eq!(sys.offers_len(&state), (1, 1));
        assert!(state.event_count() >= 2, "requests were published");
        assert!(state.offers(0)[0].is_send);
        assert!(!state.offers(1)[0].is_send);
        assert_eq!(state.local(1, "x"), Some(&Value::Int(0)));
        assert_eq!(state.local(1, "missing"), None);
    }

    impl CspSystem {
        /// Test helper: offer counts for the two ping-pong processes.
        fn offers_len(&self, s: &CspState) -> (usize, usize) {
            (s.offers(0).len(), s.offers(1).len())
        }
    }

    /// All (fingerprint, event-count) pairs over every explored run.
    fn fingerprints(sys: &CspSystem) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        Explorer::default().for_each_run(sys, |state, _| {
            let c = sys.computation(state).unwrap();
            out.push((c.fingerprint(), state.event_count()));
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn compiled_matches_interpreted() {
        let merger = || {
            CspProgram::new()
                .process(
                    CspProcess::new(
                        "m",
                        vec![CspStmt::Alt(vec![
                            AltBranch {
                                guard: Some(Expr::var("a").eq(Expr::int(0))),
                                comm: Comm::Recv {
                                    from: "p1".into(),
                                    var: "a".into(),
                                },
                                body: vec![CspStmt::recv("p2", "b")],
                            },
                            AltBranch {
                                guard: None,
                                comm: Comm::Recv {
                                    from: "p2".into(),
                                    var: "b".into(),
                                },
                                body: vec![CspStmt::recv("p1", "a")],
                            },
                        ])],
                    )
                    .local("a", 0i64)
                    .local("b", 0i64),
                )
                .process(CspProcess::new(
                    "p1",
                    vec![CspStmt::send("m", Expr::int(1))],
                ))
                .process(CspProcess::new(
                    "p2",
                    vec![CspStmt::send("m", Expr::int(2))],
                ))
        };
        let loops = || {
            CspProgram::new()
                .process(
                    CspProcess::new(
                        "w",
                        vec![
                            CspStmt::While(
                                Expr::var("i").lt(Expr::int(3)),
                                vec![CspStmt::assign("i", Expr::var("i").add(Expr::int(1)))],
                            ),
                            CspStmt::If(
                                Expr::var("i").eq(Expr::int(3)),
                                vec![CspStmt::send("sink", Expr::var("i"))],
                                vec![CspStmt::send("sink", Expr::int(-1))],
                            ),
                        ],
                    )
                    .local("i", 0i64),
                )
                .process(
                    CspProcess::new("sink", vec![CspStmt::recv("w", "got")]).local("got", 0i64),
                )
        };
        // Deadlocking mismatch: both runs truncate at the same point.
        let mismatch = || {
            CspProgram::new()
                .process(CspProcess::new("a", vec![CspStmt::recv("b", "x")]).local("x", 0i64))
                .process(CspProcess::new("b", vec![CspStmt::recv("a", "y")]).local("y", 0i64))
        };
        for prog in [ping_pong(), merger(), loops(), mismatch()] {
            let compiled = fingerprints(&CspSystem::new(prog.clone()).with_compile(true));
            let interpreted = fingerprints(&CspSystem::new(prog).with_compile(false));
            assert_eq!(compiled, interpreted);
            assert!(!compiled.is_empty());
        }
    }

    #[test]
    fn code_stats_populated() {
        let sys = CspSystem::new(ping_pong());
        let stats = sys.code_stats();
        assert!(stats.programs == 2 && stats.ops > 0 && stats.slots == 2);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn unknown_partner_rejected() {
        let prog = CspProgram::new().process(CspProcess::new(
            "a",
            vec![CspStmt::send("ghost", Expr::int(1))],
        ));
        let _ = CspSystem::new(prog);
    }

    #[test]
    fn dangling_offers_never_end() {
        // p offers to both q and r via alt; only q accepts. The offer to r
        // remains a request with no end.
        let prog = CspProgram::new()
            .process(CspProcess::new(
                "p",
                vec![CspStmt::Alt(vec![
                    AltBranch {
                        guard: None,
                        comm: Comm::Send {
                            to: "q".into(),
                            expr: Expr::int(1),
                        },
                        body: vec![],
                    },
                    AltBranch {
                        guard: None,
                        comm: Comm::Send {
                            to: "r".into(),
                            expr: Expr::int(2),
                        },
                        body: vec![],
                    },
                ])],
            ))
            .process(CspProcess::new("q", vec![CspStmt::recv("p", "x")]).local("x", 0i64))
            .process(CspProcess::new("r", vec![]));
        let sys = CspSystem::new(prog);
        Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state));
            let c = sys.computation(state).unwrap();
            let reqs = c.events_of_class(sys.class("OutReq")).count();
            let ends = c.events_of_class(sys.class("OutEnd")).count();
            assert_eq!(reqs, 2, "both offers published");
            assert_eq!(ends, 1, "only one exchange committed");
            ControlFlow::Continue(())
        });
    }
}
