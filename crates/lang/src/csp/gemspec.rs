//! The GEM description of CSP communication (§8.2) as checkable
//! restrictions.
//!
//! The paper's simultaneity restriction for an I/O exchange is
//!
//! ```text
//! (∀ inp:?, out:!) [ inp.req ⊳ out.end ⇔ out.req ⊳ inp.end ]
//! ```
//!
//! together with the prerequisite structure of requests and completions
//! and value transfer (`send ⊳ receive ⊃ parameters equal`).

use gem_logic::{EventSel, Formula, ValueTerm};
use gem_spec::prerequisite;

use crate::csp::sim::CspSystem;

/// Named restriction formulas for the CSP primitive on `sys`'s structure.
pub fn csp_restrictions(sys: &CspSystem) -> Vec<(String, Formula)> {
    let out_req = EventSel::of_class(sys.class("OutReq"));
    let out_end = EventSel::of_class(sys.class("OutEnd"));
    let in_req = EventSel::of_class(sys.class("InReq"));
    let in_end = EventSel::of_class(sys.class("InEnd"));

    // Simultaneity: for every exchange, the cross edges come in pairs:
    // if an InReq enabled an OutEnd, then the OutReq that enabled that
    // OutEnd enabled the InReq's own InEnd, and vice versa.
    let simultaneity = Formula::forall(
        "ir",
        in_req.clone(),
        Formula::forall(
            "oe",
            out_end.clone(),
            Formula::enables("ir", "oe").implies(Formula::exists(
                "or",
                out_req.clone(),
                Formula::enables("or", "oe").and(Formula::exists(
                    "ie",
                    in_end.clone(),
                    Formula::enables("ir", "ie").and(Formula::enables("or", "ie")),
                )),
            )),
        ),
    );

    // Value transfer: paired ends carry the same value.
    let transfer = Formula::forall(
        "or",
        out_req.clone(),
        Formula::forall(
            "oe",
            out_end.clone(),
            Formula::forall(
                "ie",
                in_end.clone(),
                Formula::enables("or", "oe")
                    .and(Formula::enables("or", "ie"))
                    .implies(Formula::value_eq(
                        ValueTerm::param("oe", "val"),
                        ValueTerm::param("ie", "val"),
                    )),
            ),
        ),
    );

    vec![
        (
            "outreq-enables-one-outend".into(),
            prerequisite(&out_req, &out_end),
        ),
        (
            "inreq-enables-one-inend".into(),
            prerequisite(&in_req, &in_end),
        ),
        ("simultaneity".into(), simultaneity),
        ("value-transfer".into(), transfer),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::def::{CspProcess, CspProgram, CspStmt};
    use crate::explore::Explorer;
    use crate::{Expr, System as _};
    use gem_logic::holds_on_computation;
    use std::ops::ControlFlow;

    #[test]
    fn csp_restrictions_hold_on_pipeline() {
        // A three-stage pipeline: src -> mid -> sink, two items.
        let prog = CspProgram::new()
            .process(CspProcess::new(
                "src",
                vec![
                    CspStmt::send("mid", Expr::int(1)),
                    CspStmt::send("mid", Expr::int(2)),
                ],
            ))
            .process(
                CspProcess::new(
                    "mid",
                    vec![
                        CspStmt::recv("src", "x"),
                        CspStmt::send("sink", Expr::var("x").mul(Expr::int(10))),
                        CspStmt::recv("src", "x"),
                        CspStmt::send("sink", Expr::var("x").mul(Expr::int(10))),
                    ],
                )
                .local("x", 0i64),
            )
            .process(
                CspProcess::new(
                    "sink",
                    vec![CspStmt::recv("mid", "a"), CspStmt::recv("mid", "b")],
                )
                .local("a", 0i64)
                .local("b", 0i64),
            );
        let sys = CspSystem::new(prog);
        let restrictions = csp_restrictions(&sys);
        let mut runs = 0;
        Explorer::default().for_each_run(&sys, |state, _| {
            runs += 1;
            assert!(sys.is_complete(state));
            let c = sys.computation(state).unwrap();
            for (name, f) in &restrictions {
                assert!(
                    holds_on_computation(f, &c).unwrap(),
                    "CSP restriction {name} violated"
                );
            }
            ControlFlow::Continue(())
        });
        assert!(runs >= 1);
    }

    #[test]
    fn simultaneity_fails_on_hand_built_half_exchange() {
        // Build a computation with only one cross edge — the simultaneity
        // restriction must reject it.
        use gem_core::ComputationBuilder;
        let prog = CspProgram::new()
            .process(CspProcess::new("a", vec![]))
            .process(CspProcess::new("b", vec![]));
        let sys = CspSystem::new(prog);
        let mut b = ComputationBuilder::new(sys.structure_arc());
        let oreq = b
            .add_event(sys.out_element(0), sys.class("OutReq"), vec!["b".into()])
            .unwrap();
        let ireq = b
            .add_event(sys.in_element(1), sys.class("InReq"), vec!["a".into()])
            .unwrap();
        let oend = b
            .add_event(
                sys.out_element(0),
                sys.class("OutEnd"),
                vec![1i64.into(), "b".into()],
            )
            .unwrap();
        b.enable(oreq, oend).unwrap();
        b.enable(ireq, oend).unwrap();
        // Deliberately omit the InEnd: half an exchange.
        let c = b.seal().unwrap();
        let restrictions = csp_restrictions(&sys);
        let sim = &restrictions
            .iter()
            .find(|(n, _)| n == "simultaneity")
            .unwrap()
            .1;
        assert!(!holds_on_computation(sim, &c).unwrap());
    }
}
