//! CSP program definitions: sequential processes communicating by
//! synchronous message exchange (Hoare's Communicating Sequential
//! Processes, the second language primitive the paper describes in GEM).

use gem_core::Value;

use crate::ast::Expr;

/// A communication command: output (`Q!expr`) or input (`Q?var`).
#[derive(Clone, PartialEq, Debug)]
pub enum Comm {
    /// `to ! expr` — offer `expr`'s value to process `to`.
    Send {
        /// Partner process name.
        to: String,
        /// Value expression, evaluated over the process locals when the
        /// offer is made.
        expr: Expr,
    },
    /// `from ? var` — accept a value from process `from` into `var`.
    Recv {
        /// Partner process name.
        from: String,
        /// Local variable receiving the value.
        var: String,
    },
}

/// One guarded branch of an alternative command.
#[derive(Clone, PartialEq, Debug)]
pub struct AltBranch {
    /// Optional boolean guard; `None` is an open guard.
    pub guard: Option<Expr>,
    /// The communication guarding the branch.
    pub comm: Comm,
    /// Statements executed when the branch is chosen.
    pub body: Vec<CspStmt>,
}

/// A CSP statement.
#[derive(Clone, PartialEq, Debug)]
pub enum CspStmt {
    /// Local assignment.
    Assign(String, Expr),
    /// Conditional.
    If(Expr, Vec<CspStmt>, Vec<CspStmt>),
    /// Loop.
    While(Expr, Vec<CspStmt>),
    /// A single communication (blocking until the partner is ready).
    Comm(Comm),
    /// Guarded alternative: offers every open branch's communication and
    /// commits to whichever exchange happens.
    Alt(Vec<AltBranch>),
}

impl CspStmt {
    /// Shorthand for `to ! expr`.
    pub fn send(to: impl Into<String>, expr: Expr) -> Self {
        CspStmt::Comm(Comm::Send {
            to: to.into(),
            expr,
        })
    }

    /// Shorthand for `from ? var`.
    pub fn recv(from: impl Into<String>, var: impl Into<String>) -> Self {
        CspStmt::Comm(Comm::Recv {
            from: from.into(),
            var: var.into(),
        })
    }

    /// Shorthand for [`CspStmt::Assign`].
    pub fn assign(var: impl Into<String>, expr: Expr) -> Self {
        CspStmt::Assign(var.into(), expr)
    }
}

/// A CSP process: name, locals with initial values, and a body.
#[derive(Clone, PartialEq, Debug)]
pub struct CspProcess {
    /// Process name (used as the communication partner address).
    pub name: String,
    /// Local variables and initial values.
    pub locals: Vec<(String, Value)>,
    /// The process body.
    pub body: Vec<CspStmt>,
}

impl CspProcess {
    /// Creates a process.
    pub fn new(name: impl Into<String>, body: Vec<CspStmt>) -> Self {
        Self {
            name: name.into(),
            locals: Vec::new(),
            body,
        }
    }

    /// Declares a local variable with an initial value.
    pub fn local(mut self, name: impl Into<String>, init: impl Into<Value>) -> Self {
        self.locals.push((name.into(), init.into()));
        self
    }
}

/// A CSP program: a closed set of processes.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CspProgram {
    /// The processes, addressed by name.
    pub processes: Vec<CspProcess>,
}

impl CspProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a process.
    pub fn process(mut self, p: CspProcess) -> Self {
        self.processes.push(p);
        self
    }

    /// Index of the process named `name`.
    pub fn process_index(&self, name: &str) -> Option<usize> {
        self.processes.iter().position(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let p = CspProcess::new("producer", vec![CspStmt::send("consumer", Expr::int(1))])
            .local("i", 0i64);
        let prog = CspProgram::new().process(p).process(CspProcess::new(
            "consumer",
            vec![CspStmt::recv("producer", "x")],
        ));
        assert_eq!(prog.processes.len(), 2);
        assert_eq!(prog.process_index("consumer"), Some(1));
        assert_eq!(prog.process_index("ghost"), None);
    }

    #[test]
    fn alt_branch_shape() {
        let b = AltBranch {
            guard: Some(Expr::var("n").gt(Expr::int(0))),
            comm: Comm::Recv {
                from: "p".into(),
                var: "x".into(),
            },
            body: vec![CspStmt::assign("n", Expr::var("n").add(Expr::int(1)))],
        };
        assert!(b.guard.is_some());
        assert!(matches!(b.comm, Comm::Recv { .. }));
    }
}
