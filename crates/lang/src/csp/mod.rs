//! Communicating Sequential Processes (Hoare), the second language
//! primitive the paper describes in GEM.
//!
//! * [`CspProgram`]/[`CspProcess`] — program text (processes, guarded
//!   alternatives, synchronous send/receive).
//! * [`CspSystem`] — executes programs, emitting GEM computations whose
//!   exchanges carry the paper's simultaneity structure
//!   (`inp.req ⊳ out.end ⇔ out.req ⊳ inp.end`).
//! * [`csp_restrictions`] — the GEM description of the primitive.

mod def;
mod gemspec;
mod sim;

pub use def::{AltBranch, Comm, CspProcess, CspProgram, CspStmt};
pub use gemspec::csp_restrictions;
pub use sim::{CspAction, CspState, CspSystem, Offer};
