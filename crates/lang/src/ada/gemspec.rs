//! The GEM description of ADA rendezvous as checkable restrictions.
//!
//! The tasking/rendezvous rules: every rendezvous start (`Accept`) is
//! enabled by exactly one entry `Call` and vice versa at most once; every
//! caller resumption (`Returned`) is enabled by exactly one rendezvous
//! `Complete`; the extended-rendezvous shape `Call ⇒ Accept ⇒ Complete ⇒
//! Returned` holds of every served call; and rendezvous of one task never
//! overlap (the accepting task is sequential).

use gem_core::Computation;
use gem_logic::{EventSel, Formula};
use gem_spec::prerequisite;

use crate::ada::sim::AdaSystem;

/// Named restriction formulas for the ADA tasking primitive.
pub fn ada_restrictions(sys: &AdaSystem) -> Vec<(String, Formula)> {
    let call = EventSel::of_class(sys.class("Call"));
    let accept = EventSel::of_class(sys.class("Accept"));
    let complete = EventSel::of_class(sys.class("Complete"));
    let returned = EventSel::of_class(sys.class("Returned"));

    // Rendezvous shape: Call → Accept pairing and Complete → Returned
    // pairing, plus extended-rendezvous ordering.
    let extended = Formula::forall(
        "c",
        call.clone(),
        Formula::forall(
            "a",
            accept.clone(),
            Formula::enables("c", "a").implies(Formula::exists(
                "k",
                complete.clone(),
                Formula::precedes("a", "k").and(Formula::exists(
                    "r",
                    returned.clone(),
                    Formula::enables("k", "r"),
                )),
            )),
        ),
    );

    vec![
        (
            "call-enables-one-accept".into(),
            prerequisite(&call, &accept),
        ),
        (
            "complete-enables-one-return".into(),
            prerequisite(&complete, &returned),
        ),
        ("extended-rendezvous".into(), extended),
    ]
}

/// Rendezvous of the same accepting task never overlap: all `Accept` and
/// `Complete` events of one task are totally ordered by the temporal
/// order.
pub fn rendezvous_sequential(sys: &AdaSystem, computation: &Computation) -> bool {
    let s = computation.structure();
    for t in &sys.program().tasks {
        let Some(group) = s.group(&t.name) else {
            continue;
        };
        let interesting: Vec<_> = computation
            .events()
            .iter()
            .filter(|e| {
                (e.class() == sys.class("Accept") || e.class() == sys.class("Complete"))
                    && s.contained(e.element().into(), group)
            })
            .map(|e| e.id())
            .collect();
        for (i, &a) in interesting.iter().enumerate() {
            for &b in &interesting[i + 1..] {
                if computation.concurrent(a, b) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ada::def::{AdaProgram, AdaStmt, AdaTask};
    use crate::explore::Explorer;
    use crate::Expr;
    use gem_logic::holds_on_computation;
    use std::ops::ControlFlow;

    fn two_client_server() -> AdaProgram {
        let server = AdaTask::new(
            "server",
            vec![
                AdaStmt::accept_with("E", &["x"], vec![AdaStmt::assign("v", Expr::var("x"))]),
                AdaStmt::accept_with("E", &["x"], vec![AdaStmt::assign("v", Expr::var("x"))]),
            ],
        )
        .entry("E")
        .local("v", 0i64);
        AdaProgram::new()
            .task(server)
            .task(AdaTask::new(
                "c1",
                vec![AdaStmt::call("server", "E", vec![Expr::int(1)])],
            ))
            .task(AdaTask::new(
                "c2",
                vec![AdaStmt::call("server", "E", vec![Expr::int(2)])],
            ))
    }

    #[test]
    fn ada_restrictions_hold_on_all_schedules() {
        let sys = AdaSystem::new(two_client_server());
        let restrictions = ada_restrictions(&sys);
        let mut runs = 0;
        Explorer::default().for_each_run(&sys, |state, _| {
            runs += 1;
            let c = sys.computation(state).unwrap();
            for (name, f) in &restrictions {
                assert!(
                    holds_on_computation(f, &c).unwrap(),
                    "ADA restriction {name} violated"
                );
            }
            assert!(rendezvous_sequential(&sys, &c));
            ControlFlow::Continue(())
        });
        assert!(runs >= 2, "both arrival orders explored");
    }
}
