//! ADA tasking (entries, accept, select, rendezvous), the third language
//! primitive the paper describes in GEM.
//!
//! * [`AdaProgram`]/[`AdaTask`] — program text.
//! * [`AdaSystem`] — executes programs, emitting GEM computations whose
//!   served calls carry the extended-rendezvous shape
//!   `Call ⇒ Accept ⇒ Complete ⇒ Returned`.
//! * [`ada_restrictions`]/[`rendezvous_sequential`] — the GEM description
//!   of the primitive.

mod def;
mod gemspec;
mod sim;

pub use def::{AcceptArm, AdaProgram, AdaStmt, AdaTask, SelectBranch};
pub use gemspec::{ada_restrictions, rendezvous_sequential};
pub use sim::{AdaAction, AdaState, AdaSystem};
