//! Execution of ADA tasking programs into GEM computations.
//!
//! Event vocabulary per task `t`:
//!
//! | Element | Classes (params) |
//! |---------|------------------|
//! | `<t>.flow` | `CallSent(callee, entry)`, `Returned(callee, entry)` |
//! | `<t>.entry.<e>` | `Call(caller)`, `Accept(caller)`, `Complete(caller)` |
//! | `<t>.var.<v>` | `Assign(newval)` |
//!
//! Each task is a GEM group; its entry `Call` classes and its flow
//! `Returned` class are ports — calls arrive from outside, and the
//! rendezvous completion re-enables the caller across the firewall.
//!
//! A rendezvous produces `CallSent ⊳ Call ⊳ Accept ⊳ (body) ⊳ Complete ⊳
//! Returned`, with the caller suspended between `Call` and `Returned` —
//! GEM's picture of ADA's extended rendezvous. Entry queues are FIFO in
//! call-arrival order, and arrival order is a scheduler choice, so all
//! service orders are explored.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use gem_core::{
    BuildError, BuilderMark, ClassId, Computation, ComputationBuilder, ElementId, EventId, NodeRef,
    Structure, Value,
};

use crate::ada::def::{AcceptArm, AdaProgram, AdaStmt, SelectBranch};
use crate::ast::VarStore;
use crate::code::{CodeStats, CondKind, ExprId, ExprPool, SlotLayout};
use crate::explore::System;
use std::time::Instant;

/// A compiled ADA program ready to execute.
#[derive(Clone, Debug)]
pub struct AdaSystem {
    program: AdaProgram,
    structure: Arc<Structure>,
    call_sent: ClassId,
    returned: ClassId,
    call: ClassId,
    accept: ClassId,
    complete: ClassId,
    assign: ClassId,
    flow_els: Vec<ElementId>,
    entry_els: Vec<BTreeMap<String, ElementId>>,
    var_els: Vec<BTreeMap<String, ElementId>>,
    /// Compiled per-task programs (built unconditionally; `compiled`
    /// selects the execution path).
    code: Arc<AdaCode>,
    /// Execute compiled programs (default) or the tree-walking
    /// interpreter (the differential oracle).
    compiled: bool,
}

/// Compiled form of an ADA program: slot-resolved task-local scopes,
/// postfix expression code, flat statement programs with rendezvous-body
/// regions, and interned task-name values.
#[derive(Clone, Debug)]
struct AdaCode {
    pool: ExprPool,
    progs: Vec<AProg>,
    /// `Value::Str(task_name)` per task, cloned into `Call` / `Accept` /
    /// `Complete` params instead of re-allocating the name per emit.
    name_values: Vec<Value>,
    stats: CodeStats,
}

/// One task body as a flat program.
#[derive(Clone, Debug)]
struct AProg {
    ops: Vec<AOp>,
    /// Local scope: declared locals plus every accept-arm formal.
    locals: SlotLayout,
    /// Initial slot values (declared locals bound, formals unbound).
    init: Vec<Option<Value>>,
    /// Every accept arm of the task, indexed by [`AOp::Accept`] /
    /// [`AOp::Select`].
    arms: Vec<ArmTpl>,
}

/// A compiled accept arm: everything a rendezvous needs without touching
/// the statement tree.
#[derive(Clone, Debug)]
struct ArmTpl {
    entry: String,
    entry_el: ElementId,
    /// Slots the queued call's arguments bind to.
    param_slots: Vec<u32>,
    /// Start of the body region (runs to [`AOp::EndBody`]).
    body_pc: u32,
    /// Where the callee resumes once the rendezvous completes.
    cont_pc: u32,
}

/// One flat ADA instruction.
#[derive(Clone, Debug)]
enum AOp {
    /// Evaluate and bind a declared local, emitting `Assign`.
    Assign {
        slot: u32,
        el: ElementId,
        expr: ExprId,
    },
    /// Assignment to an undeclared local: evaluate (surfacing expression
    /// errors first, like the interpreter), then panic.
    AssignUnknown {
        name: String,
        expr: ExprId,
    },
    /// `IF`/`WHILE` condition: fall through when true, jump when false.
    JumpIfFalse {
        cond: ExprId,
        target: u32,
        kind: CondKind,
    },
    Jump(u32),
    /// An entry call. The pc parks here through `ReadyToCall` and
    /// `InCall`; the rendezvous advances it when `Returned` fires.
    Call {
        callee: usize,
        entry: String,
        entry_el: ElementId,
        args: Vec<ExprId>,
        /// `[Str(callee_name), Str(entry)]`, the params of both the
        /// `CallSent` and the `Returned` events.
        callee_params: [Value; 2],
    },
    /// Block on one accept arm.
    Accept(u32),
    /// Evaluate guards, block on the open arms.
    Select(Vec<(Option<ExprId>, u32)>),
    /// End of a rendezvous-body region.
    EndBody,
    /// Task body finished.
    End,
}

fn patch_ajump(ops: &mut [AOp], at: usize, to: u32) {
    match &mut ops[at] {
        AOp::JumpIfFalse { target, .. } | AOp::Jump(target) => *target = to,
        other => unreachable!("patching non-jump {other:?}"),
    }
}

/// Interns every accept-arm formal of `stmts` into `layout`, so formals
/// have slots before any expression referencing them compiles.
fn collect_arm_params(stmts: &[AdaStmt], layout: &mut SlotLayout) {
    for st in stmts {
        match st {
            AdaStmt::Accept(arm) => {
                for p in &arm.params {
                    layout.intern(p);
                }
                collect_arm_params(&arm.body, layout);
            }
            AdaStmt::Select(branches) => {
                for b in branches {
                    for p in &b.accept.params {
                        layout.intern(p);
                    }
                    collect_arm_params(&b.accept.body, layout);
                }
            }
            AdaStmt::If(_, a, b) => {
                collect_arm_params(a, layout);
                collect_arm_params(b, layout);
            }
            AdaStmt::While(_, b) => collect_arm_params(b, layout),
            AdaStmt::Assign(..) | AdaStmt::EntryCall { .. } => {}
        }
    }
}

/// Compiles one task body into a flat [`AOp`] program.
struct AdaCompiler<'a> {
    pool: &'a mut ExprPool,
    locals: &'a SlotLayout,
    /// Empty: ADA tasks share no variables.
    globals: &'a SlotLayout,
    var_els: &'a BTreeMap<String, ElementId>,
    entry_els: &'a [BTreeMap<String, ElementId>],
    program: &'a AdaProgram,
    tid: usize,
    ops: Vec<AOp>,
    arms: Vec<ArmTpl>,
    /// Arm bodies compiled into regions after `End` (validation already
    /// rejected nested rendezvous, so this drains in one pass).
    pending: Vec<(usize, &'a [AdaStmt])>,
}

impl<'a> AdaCompiler<'a> {
    fn expr(&mut self, e: &crate::ast::Expr) -> ExprId {
        self.pool.compile(e, self.locals, self.globals)
    }

    fn arm(&mut self, arm: &'a AcceptArm, cont_pc: u32) -> u32 {
        let idx = self.arms.len() as u32;
        let param_slots = arm
            .params
            .iter()
            .map(|p| self.locals.get(p).expect("formals interned"))
            .collect();
        self.arms.push(ArmTpl {
            entry: arm.entry.clone(),
            entry_el: self.entry_els[self.tid][&arm.entry],
            param_slots,
            body_pc: 0, // patched in finish()
            cont_pc,
        });
        self.pending.push((idx as usize, &arm.body));
        idx
    }

    fn compile(&mut self, stmts: &'a [AdaStmt]) {
        for st in stmts {
            match st {
                AdaStmt::Assign(var, expr) => {
                    let expr = self.expr(expr);
                    match (self.locals.get(var), self.var_els.get(var)) {
                        (Some(slot), Some(&el)) => {
                            self.ops.push(AOp::Assign { slot, el, expr });
                        }
                        _ => self.ops.push(AOp::AssignUnknown {
                            name: var.clone(),
                            expr,
                        }),
                    }
                }
                AdaStmt::If(cond, then_branch, else_branch) => {
                    let cond = self.expr(cond);
                    let jf = self.ops.len();
                    self.ops.push(AOp::JumpIfFalse {
                        cond,
                        target: 0,
                        kind: CondKind::If,
                    });
                    self.compile(then_branch);
                    if else_branch.is_empty() {
                        let end = self.ops.len() as u32;
                        patch_ajump(&mut self.ops, jf, end);
                    } else {
                        let j = self.ops.len();
                        self.ops.push(AOp::Jump(0));
                        let else_start = self.ops.len() as u32;
                        patch_ajump(&mut self.ops, jf, else_start);
                        self.compile(else_branch);
                        let end = self.ops.len() as u32;
                        patch_ajump(&mut self.ops, j, end);
                    }
                }
                AdaStmt::While(cond, body) => {
                    let head = self.ops.len() as u32;
                    let cond = self.expr(cond);
                    let jf = self.ops.len();
                    self.ops.push(AOp::JumpIfFalse {
                        cond,
                        target: 0,
                        kind: CondKind::While,
                    });
                    self.compile(body);
                    self.ops.push(AOp::Jump(head));
                    let end = self.ops.len() as u32;
                    patch_ajump(&mut self.ops, jf, end);
                }
                AdaStmt::EntryCall { task, entry, args } => {
                    let callee = self.program.task_index(task).expect("validated");
                    let args = args.iter().map(|a| self.expr(a)).collect();
                    self.ops.push(AOp::Call {
                        callee,
                        entry: entry.clone(),
                        entry_el: self.entry_els[callee][entry],
                        args,
                        callee_params: [Value::Str(task.clone()), Value::Str(entry.clone())],
                    });
                }
                AdaStmt::Accept(arm) => {
                    let cont = self.ops.len() as u32 + 1;
                    let idx = self.arm(arm, cont);
                    self.ops.push(AOp::Accept(idx));
                }
                AdaStmt::Select(branches) => {
                    let cont = self.ops.len() as u32 + 1;
                    let arms = branches
                        .iter()
                        .map(|b| {
                            let guard = b.guard.as_ref().map(|g| self.expr(g));
                            (guard, self.arm(&b.accept, cont))
                        })
                        .collect();
                    self.ops.push(AOp::Select(arms));
                }
            }
        }
    }

    fn finish(mut self) -> (Vec<AOp>, Vec<ArmTpl>) {
        self.ops.push(AOp::End);
        let pending = std::mem::take(&mut self.pending);
        for (idx, body) in pending {
            let body_pc = self.ops.len() as u32;
            self.compile(body);
            self.ops.push(AOp::EndBody);
            self.arms[idx].body_pc = body_pc;
        }
        (self.ops, self.arms)
    }
}

#[derive(Clone, Debug)]
enum TStatus {
    /// Stopped at an [`AdaStmt::EntryCall`], waiting for the scheduler to
    /// issue it.
    ReadyToCall,
    /// Call issued; suspended in the callee's entry queue / rendezvous.
    InCall,
    /// Blocked at accept/select with the given open arms.
    AtAccept(Vec<AcceptArm>),
    /// Compiled mode: blocked at accept/select with the given open arm
    /// indices into the task's [`AProg::arms`].
    AtAcceptC(Vec<u32>),
    /// Task body finished.
    Done,
}

#[derive(Clone, Debug)]
struct TaskState {
    locals: VarStore,
    frames: Vec<VecDeque<AdaStmt>>,
    /// Compiled mode: slot-indexed locals (unbound = `None`).
    lslots: Vec<Option<Value>>,
    /// Compiled mode: program counter into the task's [`AProg`].
    pc: u32,
    status: TStatus,
    last: Option<EventId>,
}

/// A queued entry call.
#[derive(Clone, Debug)]
struct QueuedCall {
    caller: usize,
    args: Vec<Value>,
    call_event: EventId,
}

/// Execution state of an ADA program.
#[derive(Clone, Debug)]
pub struct AdaState {
    builder: ComputationBuilder,
    tasks: Vec<TaskState>,
    /// Entry queues: `(task, entry) → FIFO of queued calls`.
    queues: BTreeMap<(usize, String), VecDeque<QueuedCall>>,
    /// Shared handle to the compiled code, so accessors can translate
    /// names to slots without the system in hand.
    code: Arc<AdaCode>,
    compiled: bool,
}

/// Rollback record for the exploration fast path: task control state and
/// entry queues are snapshotted wholesale, while the accumulated trace rolls
/// back through a [`BuilderMark`].
#[derive(Clone, Debug)]
pub struct AdaCheckpoint {
    mark: BuilderMark,
    tasks: Vec<TaskState>,
    queues: BTreeMap<(usize, String), VecDeque<QueuedCall>>,
}

/// A scheduler choice for an ADA program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdaAction {
    /// Task `tid` issues its pending entry call (joins the callee queue).
    IssueCall(usize),
    /// Callee `tid` rendezvouses on `entry` with the queue-front caller.
    Rendezvous {
        /// The accepting task.
        tid: usize,
        /// The entry accepted.
        entry: String,
    },
}

impl AdaSystem {
    /// Compiles `program`: one GEM group per task with flow, entry, and
    /// variable elements; entry `Call`s and flow `Returned` as ports.
    ///
    /// # Panics
    ///
    /// Panics if a call references an unknown task/entry or an accept
    /// names an undeclared entry, or an accept body contains a nested
    /// rendezvous.
    pub fn new(program: AdaProgram) -> Self {
        let mut s = Structure::new();
        let call_sent = s
            .add_class("CallSent", &["callee", "entry"])
            .expect("fresh class");
        let returned = s
            .add_class("Returned", &["callee", "entry"])
            .expect("fresh class");
        let call = s.add_class("Call", &["caller"]).expect("fresh class");
        let accept = s.add_class("Accept", &["caller"]).expect("fresh class");
        let complete = s.add_class("Complete", &["caller"]).expect("fresh class");
        let assign = s.add_class("Assign", &["newval"]).expect("fresh class");

        let mut flow_els = Vec::new();
        let mut entry_els = Vec::new();
        let mut var_els = Vec::new();
        for t in &program.tasks {
            let flow = s
                .add_element(format!("{}.flow", t.name), &[call_sent, returned])
                .expect("flow element");
            let mut members: Vec<NodeRef> = vec![flow.into()];
            let mut entries = BTreeMap::new();
            for e in &t.entries {
                let el = s
                    .add_element(format!("{}.entry.{e}", t.name), &[call, accept, complete])
                    .expect("entry element");
                entries.insert(e.clone(), el);
                members.push(el.into());
            }
            let mut vars = BTreeMap::new();
            for (v, _) in &t.locals {
                let el = s
                    .add_element(format!("{}.var.{v}", t.name), &[assign])
                    .expect("var element");
                vars.insert(v.clone(), el);
                members.push(el.into());
            }
            let g = s.add_group(t.name.clone(), &members).expect("task group");
            for &el in entries.values() {
                s.add_port(g, el, call).expect("entry port");
            }
            s.add_port(g, flow, returned).expect("flow port");
            flow_els.push(flow);
            entry_els.push(entries);
            var_els.push(vars);
        }

        // Eager validation.
        fn check(program: &AdaProgram, tname: &str, stmts: &[AdaStmt], in_body: bool) {
            for st in stmts {
                match st {
                    AdaStmt::EntryCall { task, entry, .. } => {
                        assert!(!in_body, "task {tname:?}: nested rendezvous in accept body");
                        let ti = program.task_index(task).unwrap_or_else(|| {
                            panic!("task {tname:?} calls unknown task {task:?}")
                        });
                        assert!(
                            program.tasks[ti].entries.contains(entry),
                            "task {tname:?} calls unknown entry {task}.{entry}"
                        );
                    }
                    AdaStmt::Accept(arm) => {
                        assert!(!in_body, "task {tname:?}: nested accept in accept body");
                        let ti = program.task_index(tname).expect("own task");
                        assert!(
                            program.tasks[ti].entries.contains(&arm.entry),
                            "task {tname:?} accepts undeclared entry {:?}",
                            arm.entry
                        );
                        check(program, tname, &arm.body, true);
                    }
                    AdaStmt::Select(branches) => {
                        assert!(!in_body, "task {tname:?}: select in accept body");
                        for b in branches {
                            let ti = program.task_index(tname).expect("own task");
                            assert!(
                                program.tasks[ti].entries.contains(&b.accept.entry),
                                "task {tname:?} selects undeclared entry {:?}",
                                b.accept.entry
                            );
                            check(program, tname, &b.accept.body, true);
                        }
                    }
                    AdaStmt::If(_, a, b) => {
                        check(program, tname, a, in_body);
                        check(program, tname, b, in_body);
                    }
                    AdaStmt::While(_, b) => check(program, tname, b, in_body),
                    AdaStmt::Assign(..) => {}
                }
            }
        }
        for t in &program.tasks {
            check(&program, &t.name, &t.body, false);
        }

        // Compile: slot-resolve each task's locals and flatten its body
        // (plus rendezvous-body regions) into a jump-threaded program.
        let t0 = Instant::now();
        let empty = SlotLayout::new();
        let mut pool = ExprPool::default();
        let mut progs = Vec::with_capacity(program.tasks.len());
        for (tid, t) in program.tasks.iter().enumerate() {
            let mut locals = SlotLayout::new();
            for (n, _) in &t.locals {
                locals.intern(n);
            }
            collect_arm_params(&t.body, &mut locals);
            let mut init = vec![None; locals.len()];
            for (n, v) in &t.locals {
                init[locals.get(n).expect("interned") as usize] = Some(v.clone());
            }
            let mut c = AdaCompiler {
                pool: &mut pool,
                locals: &locals,
                globals: &empty,
                var_els: &var_els[tid],
                entry_els: &entry_els,
                program: &program,
                tid,
                ops: Vec::new(),
                arms: Vec::new(),
                pending: Vec::new(),
            };
            c.compile(&t.body);
            let (ops, arms) = c.finish();
            progs.push(AProg {
                ops,
                locals,
                init,
                arms,
            });
        }
        let name_values: Vec<Value> = program
            .tasks
            .iter()
            .map(|t| Value::Str(t.name.clone()))
            .collect();
        let stats = CodeStats {
            exprs: pool.expr_count() as u64,
            ops: (pool.op_count() + progs.iter().map(|p| p.ops.len()).sum::<usize>()) as u64,
            consts: pool.const_count() as u64,
            programs: progs.len() as u64,
            slots: progs.iter().map(|p| p.locals.len()).sum::<usize>() as u64,
            compile_ns: t0.elapsed().as_nanos() as u64,
        };
        let code = Arc::new(AdaCode {
            pool,
            progs,
            name_values,
            stats,
        });

        Self {
            program,
            structure: Arc::new(s),
            call_sent,
            returned,
            call,
            accept,
            complete,
            assign,
            flow_els,
            entry_els,
            var_els,
            code,
            compiled: true,
        }
    }

    /// Switch between compiled execution (default) and the tree-walking
    /// interpreter.
    pub fn set_compile(&mut self, on: bool) {
        self.compiled = on;
    }

    /// Builder-style [`AdaSystem::set_compile`].
    #[must_use]
    pub fn with_compile(mut self, on: bool) -> Self {
        self.set_compile(on);
        self
    }

    /// Compilation statistics for this system's [code](crate::code).
    pub fn code_stats(&self) -> CodeStats {
        self.code.stats
    }

    /// The program being executed.
    pub fn program(&self) -> &AdaProgram {
        &self.program
    }

    /// The GEM structure of this system's computations.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Shared handle to the structure.
    pub fn structure_arc(&self) -> Arc<Structure> {
        Arc::clone(&self.structure)
    }

    /// Class id by name (`"CallSent"`, `"Returned"`, `"Call"`,
    /// `"Accept"`, `"Complete"`, `"Assign"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn class(&self, name: &str) -> ClassId {
        match name {
            "CallSent" => self.call_sent,
            "Returned" => self.returned,
            "Call" => self.call,
            "Accept" => self.accept,
            "Complete" => self.complete,
            "Assign" => self.assign,
            other => panic!("unknown ADA class {other:?}"),
        }
    }

    /// The entry element of `task.entry`.
    ///
    /// # Panics
    ///
    /// Panics on unknown names.
    pub fn entry_element(&self, task: &str, entry: &str) -> ElementId {
        let ti = self
            .program
            .task_index(task)
            .unwrap_or_else(|| panic!("unknown task {task:?}"));
        *self.entry_els[ti]
            .get(entry)
            .unwrap_or_else(|| panic!("unknown entry {task}.{entry}"))
    }

    /// The flow element of `task`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown task.
    pub fn flow_element(&self, task: &str) -> ElementId {
        let ti = self
            .program
            .task_index(task)
            .unwrap_or_else(|| panic!("unknown task {task:?}"));
        self.flow_els[ti]
    }

    /// Seals the computation accumulated in `state`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] only on a simulator bug (cyclic trace).
    pub fn computation(&self, state: &AdaState) -> Result<Computation, BuildError> {
        state.builder.seal_ref()
    }

    fn emit(
        &self,
        state: &mut AdaState,
        tid: usize,
        element: ElementId,
        class: ClassId,
        params: Vec<Value>,
        extra: &[EventId],
    ) -> EventId {
        let e = state
            .builder
            .add_event(element, class, params)
            .expect("ids are from this structure");
        if let Some(last) = state.tasks[tid].last {
            state.builder.enable(last, e).expect("known events");
        }
        state.tasks[tid].last = Some(e);
        for &x in extra {
            state.builder.enable(x, e).expect("known events");
        }
        e
    }

    /// Runs local statements of `tid` until a blocking point.
    fn run(&self, state: &mut AdaState, tid: usize) {
        loop {
            while matches!(state.tasks[tid].frames.last(), Some(f) if f.is_empty()) {
                state.tasks[tid].frames.pop();
            }
            let Some(stmt) = state.tasks[tid]
                .frames
                .last_mut()
                .and_then(VecDeque::pop_front)
            else {
                state.tasks[tid].status = TStatus::Done;
                return;
            };
            match stmt {
                AdaStmt::Assign(var, expr) => {
                    let v = expr
                        .eval(&state.tasks[tid].locals)
                        .unwrap_or_else(|e| panic!("ADA runtime error: {e}"));
                    state.tasks[tid].locals.set(var.clone(), v.clone());
                    let el = *self.var_els[tid]
                        .get(&var)
                        .unwrap_or_else(|| panic!("undeclared local {var:?}"));
                    self.emit(state, tid, el, self.assign, vec![v], &[]);
                }
                AdaStmt::If(cond, t, e) => {
                    let b = cond
                        .eval(&state.tasks[tid].locals)
                        .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
                        .as_bool()
                        .expect("IF condition must be boolean");
                    state.tasks[tid]
                        .frames
                        .push(if b { t } else { e }.into_iter().collect());
                }
                AdaStmt::While(cond, body) => {
                    let b = cond
                        .eval(&state.tasks[tid].locals)
                        .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
                        .as_bool()
                        .expect("WHILE condition must be boolean");
                    if b {
                        let mut frame: VecDeque<AdaStmt> = body.iter().cloned().collect();
                        frame.push_back(AdaStmt::While(cond, body));
                        state.tasks[tid].frames.push(frame);
                    }
                }
                AdaStmt::EntryCall { task, entry, args } => {
                    // Re-queue the statement; the scheduler issues it.
                    state.tasks[tid]
                        .frames
                        .last_mut()
                        .expect("frame exists")
                        .push_front(AdaStmt::EntryCall { task, entry, args });
                    state.tasks[tid].status = TStatus::ReadyToCall;
                    return;
                }
                AdaStmt::Accept(arm) => {
                    state.tasks[tid].status = TStatus::AtAccept(vec![arm]);
                    return;
                }
                AdaStmt::Select(branches) => {
                    let mut arms = Vec::new();
                    for SelectBranch { guard, accept } in branches {
                        let open = match &guard {
                            None => true,
                            Some(g) => g
                                .eval(&state.tasks[tid].locals)
                                .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
                                .as_bool()
                                .expect("guard must be boolean"),
                        };
                        if open {
                            arms.push(accept);
                        }
                    }
                    assert!(
                        !arms.is_empty(),
                        "select with all guards closed (task {:?})",
                        self.program.tasks[tid].name
                    );
                    state.tasks[tid].status = TStatus::AtAccept(arms);
                    return;
                }
            }
        }
    }

    fn eval_c(&self, state: &AdaState, tid: usize, id: ExprId) -> Value {
        self.code
            .pool
            .eval(id, &[], &state.tasks[tid].lslots)
            .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
    }

    /// Compiled counterpart of [`AdaSystem::run`]: steps the flat program
    /// until it blocks at a `Call` (pc parked on the op through
    /// `ReadyToCall` and `InCall`; the rendezvous advances it when
    /// `Returned` fires) or an `Accept`/`Select`, or hits `End`.
    fn run_c(&self, state: &mut AdaState, tid: usize) {
        let prog = &self.code.progs[tid];
        let mut pc = state.tasks[tid].pc as usize;
        loop {
            match &prog.ops[pc] {
                AOp::Assign { slot, el, expr } => {
                    let v = self.eval_c(state, tid, *expr);
                    state.tasks[tid].lslots[*slot as usize] = Some(v.clone());
                    self.emit(state, tid, *el, self.assign, vec![v], &[]);
                    pc += 1;
                }
                AOp::AssignUnknown { name, expr } => {
                    // Evaluate first so expression errors surface exactly
                    // like the interpreter's eval-then-lookup order.
                    let _ = self.eval_c(state, tid, *expr);
                    panic!("undeclared local {name:?}");
                }
                AOp::JumpIfFalse { cond, target, kind } => {
                    let b = self
                        .eval_c(state, tid, *cond)
                        .as_bool()
                        .unwrap_or_else(|| panic!("{}", kind.expect_msg()));
                    pc = if b { pc + 1 } else { *target as usize };
                }
                AOp::Jump(t) => pc = *t as usize,
                AOp::Call { .. } => {
                    state.tasks[tid].pc = pc as u32;
                    state.tasks[tid].status = TStatus::ReadyToCall;
                    return;
                }
                AOp::Accept(arm) => {
                    state.tasks[tid].pc = pc as u32;
                    state.tasks[tid].status = TStatus::AtAcceptC(vec![*arm]);
                    return;
                }
                AOp::Select(arms) => {
                    let mut open = Vec::new();
                    for (guard, idx) in arms {
                        let is_open = match guard {
                            None => true,
                            Some(g) => self
                                .eval_c(state, tid, *g)
                                .as_bool()
                                .expect("guard must be boolean"),
                        };
                        if is_open {
                            open.push(*idx);
                        }
                    }
                    assert!(
                        !open.is_empty(),
                        "select with all guards closed (task {:?})",
                        self.program.tasks[tid].name
                    );
                    state.tasks[tid].pc = pc as u32;
                    state.tasks[tid].status = TStatus::AtAcceptC(open);
                    return;
                }
                AOp::EndBody => unreachable!("EndBody outside a rendezvous"),
                AOp::End => {
                    state.tasks[tid].pc = pc as u32;
                    state.tasks[tid].status = TStatus::Done;
                    return;
                }
            }
        }
    }

    /// Compiled counterpart of [`AdaSystem::run_body`]: executes a
    /// rendezvous-body region from `body_pc` to its `EndBody`. Validation
    /// guarantees the region is local-only.
    fn run_body_c(&self, state: &mut AdaState, tid: usize, body_pc: u32) {
        let prog = &self.code.progs[tid];
        let mut pc = body_pc as usize;
        loop {
            match &prog.ops[pc] {
                AOp::Assign { slot, el, expr } => {
                    let v = self.eval_c(state, tid, *expr);
                    state.tasks[tid].lslots[*slot as usize] = Some(v.clone());
                    self.emit(state, tid, *el, self.assign, vec![v], &[]);
                    pc += 1;
                }
                AOp::AssignUnknown { name, expr } => {
                    let _ = self.eval_c(state, tid, *expr);
                    panic!("undeclared local {name:?}");
                }
                AOp::JumpIfFalse { cond, target, kind } => {
                    let b = self
                        .eval_c(state, tid, *cond)
                        .as_bool()
                        .unwrap_or_else(|| panic!("{}", kind.expect_msg()));
                    pc = if b { pc + 1 } else { *target as usize };
                }
                AOp::Jump(t) => pc = *t as usize,
                AOp::EndBody => return,
                other => {
                    unreachable!("validated: rendezvous body is local-only, found {other:?}")
                }
            }
        }
    }
}

impl System for AdaSystem {
    type State = AdaState;
    type Action = AdaAction;
    type Checkpoint = AdaCheckpoint;

    fn initial(&self) -> AdaState {
        let mut state = AdaState {
            builder: ComputationBuilder::new(self.structure_arc()),
            tasks: self
                .program
                .tasks
                .iter()
                .enumerate()
                .map(|(tid, t)| TaskState {
                    locals: if self.compiled {
                        VarStore::default()
                    } else {
                        t.locals
                            .iter()
                            .map(|(n, v)| (n.clone(), v.clone()))
                            .collect()
                    },
                    frames: if self.compiled {
                        Vec::new()
                    } else {
                        vec![t.body.iter().cloned().collect()]
                    },
                    lslots: if self.compiled {
                        self.code.progs[tid].init.clone()
                    } else {
                        Vec::new()
                    },
                    pc: 0,
                    status: TStatus::Done,
                    last: None,
                })
                .collect(),
            queues: BTreeMap::new(),
            code: Arc::clone(&self.code),
            compiled: self.compiled,
        };
        for tid in 0..self.program.tasks.len() {
            if self.compiled {
                self.run_c(&mut state, tid);
            } else {
                self.run(&mut state, tid);
            }
        }
        state
    }

    fn enabled(&self, state: &AdaState) -> Vec<AdaAction> {
        let mut actions = Vec::new();
        for (tid, t) in state.tasks.iter().enumerate() {
            match &t.status {
                TStatus::ReadyToCall => actions.push(AdaAction::IssueCall(tid)),
                TStatus::AtAccept(arms) => {
                    for arm in arms {
                        let key = (tid, arm.entry.clone());
                        if state.queues.get(&key).is_some_and(|q| !q.is_empty()) {
                            actions.push(AdaAction::Rendezvous {
                                tid,
                                entry: arm.entry.clone(),
                            });
                        }
                    }
                }
                TStatus::AtAcceptC(open) => {
                    let arms = &self.code.progs[tid].arms;
                    for &i in open {
                        let entry = &arms[i as usize].entry;
                        let key = (tid, entry.clone());
                        if state.queues.get(&key).is_some_and(|q| !q.is_empty()) {
                            actions.push(AdaAction::Rendezvous {
                                tid,
                                entry: entry.clone(),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        crate::explore::record_enabled_width(actions.len());
        actions
    }

    fn apply(&self, state: &mut AdaState, action: &AdaAction) {
        let t0 = crate::explore::apply_timer();
        match action {
            AdaAction::IssueCall(tid) => {
                let tid = *tid;
                if self.compiled {
                    let pc = state.tasks[tid].pc as usize;
                    let AOp::Call {
                        callee,
                        entry,
                        entry_el,
                        args,
                        callee_params,
                    } = &self.code.progs[tid].ops[pc]
                    else {
                        panic!("IssueCall on a non-call statement");
                    };
                    let arg_values: Vec<Value> =
                        args.iter().map(|&a| self.eval_c(state, tid, a)).collect();
                    self.emit(
                        state,
                        tid,
                        self.flow_els[tid],
                        self.call_sent,
                        callee_params.to_vec(),
                        &[],
                    );
                    let call_ev = self.emit(
                        state,
                        tid,
                        *entry_el,
                        self.call,
                        vec![self.code.name_values[tid].clone()],
                        &[],
                    );
                    state
                        .queues
                        .entry((*callee, entry.clone()))
                        .or_default()
                        .push_back(QueuedCall {
                            caller: tid,
                            args: arg_values,
                            call_event: call_ev,
                        });
                    // pc stays parked on the Call op until Returned.
                    state.tasks[tid].status = TStatus::InCall;
                    crate::explore::record_apply_ns(t0);
                    return;
                }
                let AdaStmt::EntryCall { task, entry, args } = state.tasks[tid]
                    .frames
                    .last_mut()
                    .expect("frame exists")
                    .pop_front()
                    .expect("pending call statement")
                else {
                    panic!("IssueCall on a non-call statement");
                };
                let callee = self.program.task_index(&task).expect("validated");
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| {
                        a.eval(&state.tasks[tid].locals)
                            .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
                    })
                    .collect();
                self.emit(
                    state,
                    tid,
                    self.flow_els[tid],
                    self.call_sent,
                    vec![Value::Str(task.clone()), Value::Str(entry.clone())],
                    &[],
                );
                let caller_name = self.program.tasks[tid].name.clone();
                let call_ev = self.emit(
                    state,
                    tid,
                    self.entry_els[callee][&entry],
                    self.call,
                    vec![Value::Str(caller_name)],
                    &[],
                );
                state
                    .queues
                    .entry((callee, entry))
                    .or_default()
                    .push_back(QueuedCall {
                        caller: tid,
                        args: arg_values,
                        call_event: call_ev,
                    });
                state.tasks[tid].status = TStatus::InCall;
            }
            AdaAction::Rendezvous { tid, entry } => {
                let tid = *tid;
                if self.compiled {
                    let TStatus::AtAcceptC(open) =
                        std::mem::replace(&mut state.tasks[tid].status, TStatus::Done)
                    else {
                        panic!("Rendezvous on a non-accepting task");
                    };
                    let arms = &self.code.progs[tid].arms;
                    let arm = open
                        .iter()
                        .map(|&i| &arms[i as usize])
                        .find(|a| a.entry == *entry)
                        .expect("entry among open arms");
                    let queued = state
                        .queues
                        .get_mut(&(tid, entry.clone()))
                        .and_then(VecDeque::pop_front)
                        .expect("queue non-empty");
                    let caller_param = self.code.name_values[queued.caller].clone();
                    // Accept: enabled by the call and the callee's chain.
                    self.emit(
                        state,
                        tid,
                        arm.entry_el,
                        self.accept,
                        vec![caller_param.clone()],
                        &[queued.call_event],
                    );
                    // Bind formals into slots and run the body region.
                    for (&slot, v) in arm.param_slots.iter().zip(queued.args.iter()) {
                        state.tasks[tid].lslots[slot as usize] = Some(v.clone());
                    }
                    self.run_body_c(state, tid, arm.body_pc);
                    let complete_ev = self.emit(
                        state,
                        tid,
                        arm.entry_el,
                        self.complete,
                        vec![caller_param],
                        &[],
                    );
                    // Caller resumes: Returned enabled by its Call (chain)
                    // and the Complete; params come off its parked Call op.
                    let caller = queued.caller;
                    let caller_pc = state.tasks[caller].pc as usize;
                    let AOp::Call { callee_params, .. } = &self.code.progs[caller].ops[caller_pc]
                    else {
                        unreachable!("caller parked on its call op");
                    };
                    self.emit(
                        state,
                        caller,
                        self.flow_els[caller],
                        self.returned,
                        callee_params.to_vec(),
                        &[complete_ev],
                    );
                    state.tasks[caller].pc += 1;
                    state.tasks[tid].pc = arm.cont_pc;
                    self.run_c(state, caller);
                    self.run_c(state, tid);
                    crate::explore::record_apply_ns(t0);
                    return;
                }
                let TStatus::AtAccept(arms) =
                    std::mem::replace(&mut state.tasks[tid].status, TStatus::Done)
                else {
                    panic!("Rendezvous on a non-accepting task");
                };
                let arm = arms
                    .into_iter()
                    .find(|a| &a.entry == entry)
                    .expect("entry among open arms");
                let queued = state
                    .queues
                    .get_mut(&(tid, entry.clone()))
                    .and_then(VecDeque::pop_front)
                    .expect("queue non-empty");
                let caller_name = self.program.tasks[queued.caller].name.clone();
                let entry_el = self.entry_els[tid][entry];
                // Accept: enabled by the call and the callee's chain.
                self.emit(
                    state,
                    tid,
                    entry_el,
                    self.accept,
                    vec![Value::Str(caller_name.clone())],
                    &[queued.call_event],
                );
                // Bind formals and execute the body inline (local only).
                for (p, v) in arm.params.iter().zip(queued.args.iter()) {
                    state.tasks[tid].locals.set(p.clone(), v.clone());
                }
                state.tasks[tid]
                    .frames
                    .push(arm.body.iter().cloned().collect());
                // Body statements execute as part of the rendezvous; they
                // may not block (validated), so run them inline.
                self.run_body(state, tid);
                let complete_ev = self.emit(
                    state,
                    tid,
                    entry_el,
                    self.complete,
                    vec![Value::Str(caller_name)],
                    &[],
                );
                // Caller resumes: Returned enabled by its Call (chain) and
                // the Complete.
                let caller = queued.caller;
                let callee_name = self.program.tasks[tid].name.clone();
                self.emit(
                    state,
                    caller,
                    self.flow_els[caller],
                    self.returned,
                    vec![Value::Str(callee_name), Value::Str(entry.clone())],
                    &[complete_ev],
                );
                self.run(state, caller);
                self.run(state, tid);
            }
        }
        crate::explore::record_apply_ns(t0);
    }

    fn is_complete(&self, state: &AdaState) -> bool {
        state
            .tasks
            .iter()
            .all(|t| matches!(t.status, TStatus::Done))
    }

    fn control_key(&self, state: &AdaState) -> Option<u64> {
        let mut h = DefaultHasher::new();
        for t in &state.tasks {
            if self.compiled {
                // Slot-indexed locals plus pc key control state exactly;
                // no name or statement-tree hashing in the hot path.
                format!("{:?}", t.lslots).hash(&mut h);
                t.pc.hash(&mut h);
            } else {
                for (n, v) in t.locals.iter() {
                    n.hash(&mut h);
                    format!("{v:?}").hash(&mut h);
                }
                format!("{:?}", t.frames).hash(&mut h);
            }
            std::mem::discriminant(&t.status).hash(&mut h);
        }
        for ((tid, e), q) in &state.queues {
            tid.hash(&mut h);
            e.hash(&mut h);
            for c in q {
                c.caller.hash(&mut h);
            }
        }
        Some(h.finish())
    }

    fn checkpoint(&self, state: &AdaState) -> Option<AdaCheckpoint> {
        Some(AdaCheckpoint {
            mark: state.builder.mark(),
            tasks: state.tasks.clone(),
            queues: state.queues.clone(),
        })
    }

    fn undo(&self, state: &mut AdaState, cp: AdaCheckpoint) {
        let before = state.builder.event_count();
        state.builder.truncate_to(&cp.mark);
        crate::explore::record_undo_depth(before - state.builder.event_count());
        state.tasks = cp.tasks;
        state.queues = cp.queues;
    }

    /// Independence oracle for sleep-set POR.
    ///
    /// * Two call issues commute iff they target different `(callee,
    ///   entry)` queues: same target means both emit `Call` on the same
    ///   entry element (FIFO order and element order both observable).
    /// * A call issue commutes with a rendezvous iff it targets a
    ///   different queue. The issuer is never a rendezvous participant:
    ///   it is `ReadyToCall`, while the rendezvous's caller is `InCall`
    ///   and its callee `AtAccept`. Issuing into the same queue would
    ///   reorder that entry element's events against `Accept`/`Complete`.
    /// * Two rendezvous commute iff their callees differ (the same callee
    ///   consumes its accept state in either one). Their callers are
    ///   automatically distinct — a task has at most one outstanding call
    ///   — so all four participants touch disjoint elements and task
    ///   states, and `run` never modifies entry queues.
    fn trace_builder<'a>(&self, state: &'a AdaState) -> Option<&'a ComputationBuilder> {
        Some(&state.builder)
    }

    fn independent(&self, state: &AdaState, a: &AdaAction, b: &AdaAction) -> bool {
        match (a, b) {
            (AdaAction::IssueCall(t1), AdaAction::IssueCall(t2)) => {
                if t1 == t2 {
                    return false;
                }
                match (
                    self.pending_call_target(state, *t1),
                    self.pending_call_target(state, *t2),
                ) {
                    (Some(ta), Some(tb)) => ta != tb,
                    _ => false,
                }
            }
            (AdaAction::IssueCall(t), AdaAction::Rendezvous { tid, entry })
            | (AdaAction::Rendezvous { tid, entry }, AdaAction::IssueCall(t)) => {
                match self.pending_call_target(state, *t) {
                    Some((callee, e)) => callee != *tid || e != entry.as_str(),
                    None => false,
                }
            }
            (AdaAction::Rendezvous { tid: t1, .. }, AdaAction::Rendezvous { tid: t2, .. }) => {
                t1 != t2
            }
        }
    }
}

impl AdaSystem {
    /// The `(callee index, entry name)` a `ReadyToCall` task's pending
    /// call targets, peeked from the re-queued call statement at the
    /// front of its top frame.
    fn pending_call_target<'a>(
        &'a self,
        state: &'a AdaState,
        tid: usize,
    ) -> Option<(usize, &'a str)> {
        if self.compiled {
            return match &self.code.progs[tid].ops[state.tasks[tid].pc as usize] {
                AOp::Call { callee, entry, .. } => Some((*callee, entry.as_str())),
                _ => None,
            };
        }
        match state.tasks[tid].frames.last()?.front()? {
            AdaStmt::EntryCall { task, entry, .. } => {
                Some((self.program.task_index(task)?, entry.as_str()))
            }
            _ => None,
        }
    }

    /// Runs rendezvous-body statements (local only) of `tid` until its
    /// body frame is exhausted, leaving outer frames untouched.
    fn run_body(&self, state: &mut AdaState, tid: usize) {
        let depth = state.tasks[tid].frames.len();
        loop {
            while state.tasks[tid].frames.len() >= depth
                && matches!(state.tasks[tid].frames.last(), Some(f) if f.is_empty())
            {
                state.tasks[tid].frames.pop();
            }
            if state.tasks[tid].frames.len() < depth {
                return;
            }
            let Some(stmt) = state.tasks[tid]
                .frames
                .last_mut()
                .and_then(VecDeque::pop_front)
            else {
                return;
            };
            match stmt {
                AdaStmt::Assign(var, expr) => {
                    let v = expr
                        .eval(&state.tasks[tid].locals)
                        .unwrap_or_else(|e| panic!("ADA runtime error: {e}"));
                    state.tasks[tid].locals.set(var.clone(), v.clone());
                    let el = *self.var_els[tid]
                        .get(&var)
                        .unwrap_or_else(|| panic!("undeclared local {var:?}"));
                    self.emit(state, tid, el, self.assign, vec![v], &[]);
                }
                AdaStmt::If(cond, t, e) => {
                    let b = cond
                        .eval(&state.tasks[tid].locals)
                        .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
                        .as_bool()
                        .expect("IF condition must be boolean");
                    state.tasks[tid]
                        .frames
                        .push(if b { t } else { e }.into_iter().collect());
                }
                AdaStmt::While(cond, body) => {
                    let b = cond
                        .eval(&state.tasks[tid].locals)
                        .unwrap_or_else(|e| panic!("ADA runtime error: {e}"))
                        .as_bool()
                        .expect("WHILE condition must be boolean");
                    if b {
                        let mut frame: VecDeque<AdaStmt> = body.iter().cloned().collect();
                        frame.push_back(AdaStmt::While(cond, body));
                        state.tasks[tid].frames.push(frame);
                    }
                }
                other => panic!("rendezvous body may contain only local statements: {other:?}"),
            }
        }
    }
}

impl AdaState {
    /// The number of events emitted so far.
    pub fn event_count(&self) -> usize {
        self.builder.event_count()
    }

    /// A local variable of task `tid`.
    pub fn local(&self, tid: usize, var: &str) -> Option<&Value> {
        if self.compiled {
            let slot = self.code.progs[tid].locals.get(var)?;
            self.tasks[tid].lslots[slot as usize].as_ref()
        } else {
            self.tasks[tid].locals.get(var)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ada::def::AdaTask;
    use crate::explore::{find_deadlock, Explorer};
    use crate::Expr;
    use gem_core::is_legal;
    use std::ops::ControlFlow;

    fn put_get_server() -> AdaProgram {
        let server = AdaTask::new(
            "server",
            vec![
                AdaStmt::accept_with("Put", &["x"], vec![AdaStmt::assign("slot", Expr::var("x"))]),
                AdaStmt::accept(
                    "Bump",
                    vec![AdaStmt::assign("slot", Expr::var("slot").add(Expr::int(1)))],
                ),
            ],
        )
        .entry("Put")
        .entry("Bump")
        .local("slot", 0i64);
        let client = AdaTask::new(
            "client",
            vec![
                AdaStmt::call("server", "Put", vec![Expr::int(41)]),
                AdaStmt::call("server", "Bump", vec![]),
            ],
        );
        AdaProgram::new().task(server).task(client)
    }

    #[test]
    fn rendezvous_transfers_and_orders() {
        let sys = AdaSystem::new(put_get_server());
        let stats = Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state));
            assert_eq!(state.local(0, "slot"), Some(&Value::Int(42)));
            let c = sys.computation(state).unwrap();
            assert!(is_legal(&c), "{:?}", gem_core::check_legality(&c));
            ControlFlow::Continue(())
        });
        assert_eq!(stats.runs, 1, "single caller, deterministic");
    }

    #[test]
    fn rendezvous_event_chain() {
        let sys = AdaSystem::new(put_get_server());
        Explorer::default().for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            for acc in c.events_of_class(sys.class("Accept")) {
                // Each Accept enabled by exactly one Call.
                let calls = c
                    .enablers_of(acc)
                    .iter()
                    .filter(|&&e| c.event(e).class() == sys.class("Call"))
                    .count();
                assert_eq!(calls, 1);
            }
            for ret in c.events_of_class(sys.class("Returned")) {
                let completes = c
                    .enablers_of(ret)
                    .iter()
                    .filter(|&&e| c.event(e).class() == sys.class("Complete"))
                    .count();
                assert_eq!(completes, 1);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn select_serves_both_orders() {
        let server = AdaTask::new(
            "server",
            vec![AdaStmt::While(
                Expr::var("served").lt(Expr::int(2)),
                vec![AdaStmt::Select(vec![
                    SelectBranch {
                        guard: None,
                        accept: AcceptArm {
                            entry: "A".into(),
                            params: vec![],
                            body: vec![AdaStmt::assign(
                                "served",
                                Expr::var("served").add(Expr::int(1)),
                            )],
                        },
                    },
                    SelectBranch {
                        guard: None,
                        accept: AcceptArm {
                            entry: "B".into(),
                            params: vec![],
                            body: vec![AdaStmt::assign(
                                "served",
                                Expr::var("served").add(Expr::int(1)),
                            )],
                        },
                    },
                ])],
            )],
        )
        .entry("A")
        .entry("B")
        .local("served", 0i64);
        let ca = AdaTask::new("ca", vec![AdaStmt::call("server", "A", vec![])]);
        let cb = AdaTask::new("cb", vec![AdaStmt::call("server", "B", vec![])]);
        let sys = AdaSystem::new(AdaProgram::new().task(server).task(ca).task(cb));
        let mut orders = std::collections::HashSet::new();
        Explorer::default().for_each_run(&sys, |state, path| {
            assert!(sys.is_complete(state));
            let rendezvous: Vec<String> = path
                .iter()
                .filter_map(|a| match a {
                    AdaAction::Rendezvous { entry, .. } => Some(entry.clone()),
                    AdaAction::IssueCall(_) => None,
                })
                .collect();
            orders.insert(rendezvous);
            ControlFlow::Continue(())
        });
        assert!(orders.contains(&vec!["A".to_owned(), "B".to_owned()]));
        assert!(orders.contains(&vec!["B".to_owned(), "A".to_owned()]));
    }

    #[test]
    fn guarded_select_closes_branches() {
        let server = AdaTask::new(
            "server",
            vec![AdaStmt::Select(vec![
                SelectBranch {
                    guard: Some(Expr::bool(false)),
                    accept: AcceptArm {
                        entry: "A".into(),
                        params: vec![],
                        body: vec![],
                    },
                },
                SelectBranch {
                    guard: Some(Expr::bool(true)),
                    accept: AcceptArm {
                        entry: "B".into(),
                        params: vec![],
                        body: vec![],
                    },
                },
            ])],
        )
        .entry("A")
        .entry("B");
        let client = AdaTask::new("client", vec![AdaStmt::call("server", "B", vec![])]);
        let sys = AdaSystem::new(AdaProgram::new().task(server).task(client));
        assert!(find_deadlock(&sys, &Explorer::default()).is_none());
    }

    #[test]
    fn missing_accept_deadlocks() {
        let server = AdaTask::new("server", vec![]).entry("E");
        let client = AdaTask::new("client", vec![AdaStmt::call("server", "E", vec![])]);
        let sys = AdaSystem::new(AdaProgram::new().task(server).task(client));
        assert!(find_deadlock(&sys, &Explorer::default()).is_some());
    }

    #[test]
    fn fifo_entry_queue() {
        // Two clients call the same entry; service order follows arrival
        // order, and both arrival orders are explored.
        let server = AdaTask::new(
            "server",
            vec![
                AdaStmt::accept_with("E", &["x"], vec![AdaStmt::assign("first", Expr::var("x"))]),
                AdaStmt::accept_with("E", &["x"], vec![AdaStmt::assign("second", Expr::var("x"))]),
            ],
        )
        .entry("E")
        .local("first", 0i64)
        .local("second", 0i64);
        let c1 = AdaTask::new("c1", vec![AdaStmt::call("server", "E", vec![Expr::int(1)])]);
        let c2 = AdaTask::new("c2", vec![AdaStmt::call("server", "E", vec![Expr::int(2)])]);
        let sys = AdaSystem::new(AdaProgram::new().task(server).task(c1).task(c2));
        let mut outcomes = std::collections::HashSet::new();
        Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state));
            outcomes.insert((
                state.local(0, "first").cloned(),
                state.local(0, "second").cloned(),
            ));
            ControlFlow::Continue(())
        });
        assert!(outcomes.contains(&(Some(Value::Int(1)), Some(Value::Int(2)))));
        assert!(outcomes.contains(&(Some(Value::Int(2)), Some(Value::Int(1)))));
    }

    /// All (fingerprint, event-count) pairs over every explored run.
    fn fingerprints(sys: &AdaSystem) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        Explorer::default().for_each_run(sys, |state, _| {
            let c = sys.computation(state).unwrap();
            out.push((c.fingerprint(), state.event_count()));
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn compiled_matches_interpreted() {
        let select_server = || {
            let server = AdaTask::new(
                "server",
                vec![AdaStmt::While(
                    Expr::var("served").lt(Expr::int(2)),
                    vec![AdaStmt::Select(vec![
                        SelectBranch {
                            guard: Some(Expr::var("served").lt(Expr::int(2))),
                            accept: AcceptArm {
                                entry: "A".into(),
                                params: vec!["x".into()],
                                body: vec![AdaStmt::assign(
                                    "served",
                                    Expr::var("served").add(Expr::var("x")),
                                )],
                            },
                        },
                        SelectBranch {
                            guard: None,
                            accept: AcceptArm {
                                entry: "B".into(),
                                params: vec![],
                                body: vec![AdaStmt::assign(
                                    "served",
                                    Expr::var("served").add(Expr::int(1)),
                                )],
                            },
                        },
                    ])],
                )],
            )
            .entry("A")
            .entry("B")
            .local("served", 0i64);
            let ca = AdaTask::new("ca", vec![AdaStmt::call("server", "A", vec![Expr::int(1)])]);
            let cb = AdaTask::new("cb", vec![AdaStmt::call("server", "B", vec![])]);
            AdaProgram::new().task(server).task(ca).task(cb)
        };
        let fifo = || {
            let server = AdaTask::new(
                "server",
                vec![
                    AdaStmt::accept_with(
                        "E",
                        &["x"],
                        vec![AdaStmt::assign("first", Expr::var("x"))],
                    ),
                    AdaStmt::accept_with(
                        "E",
                        &["x"],
                        vec![AdaStmt::assign("second", Expr::var("x"))],
                    ),
                ],
            )
            .entry("E")
            .local("first", 0i64)
            .local("second", 0i64);
            let c1 = AdaTask::new("c1", vec![AdaStmt::call("server", "E", vec![Expr::int(1)])]);
            let c2 = AdaTask::new("c2", vec![AdaStmt::call("server", "E", vec![Expr::int(2)])]);
            AdaProgram::new().task(server).task(c1).task(c2)
        };
        // Deadlocking: the call is never accepted; runs truncate alike.
        let stuck = || {
            let server = AdaTask::new("server", vec![]).entry("E");
            let client = AdaTask::new("client", vec![AdaStmt::call("server", "E", vec![])]);
            AdaProgram::new().task(server).task(client)
        };
        for prog in [put_get_server(), select_server(), fifo(), stuck()] {
            let compiled = fingerprints(&AdaSystem::new(prog.clone()).with_compile(true));
            let interpreted = fingerprints(&AdaSystem::new(prog).with_compile(false));
            assert_eq!(compiled, interpreted);
            assert!(!compiled.is_empty());
        }
    }

    #[test]
    fn code_stats_populated() {
        let sys = AdaSystem::new(put_get_server());
        let stats = sys.code_stats();
        assert!(stats.programs == 2 && stats.ops > 0 && stats.slots >= 2);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn unknown_callee_rejected() {
        let t = AdaTask::new("a", vec![AdaStmt::call("ghost", "E", vec![])]);
        let _ = AdaSystem::new(AdaProgram::new().task(t));
    }

    #[test]
    #[should_panic(expected = "nested rendezvous")]
    fn nested_rendezvous_rejected() {
        let t = AdaTask::new(
            "a",
            vec![AdaStmt::Accept(AcceptArm {
                entry: "E".into(),
                params: vec![],
                body: vec![AdaStmt::call("a", "E", vec![])],
            })],
        )
        .entry("E");
        let _ = AdaSystem::new(AdaProgram::new().task(t));
    }
}
