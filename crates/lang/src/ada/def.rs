//! ADA tasking program definitions: tasks with entries communicating by
//! rendezvous (the third language primitive the paper describes in GEM).

use gem_core::Value;

use crate::ast::Expr;

/// An ADA task statement.
#[derive(Clone, PartialEq, Debug)]
pub enum AdaStmt {
    /// Local assignment.
    Assign(String, Expr),
    /// Conditional.
    If(Expr, Vec<AdaStmt>, Vec<AdaStmt>),
    /// Loop.
    While(Expr, Vec<AdaStmt>),
    /// Call an entry of another task (blocks until the rendezvous
    /// completes).
    EntryCall {
        /// Callee task name.
        task: String,
        /// Entry name.
        entry: String,
        /// Argument expressions, evaluated over the caller's locals.
        args: Vec<Expr>,
    },
    /// Accept a call on an entry, executing the body during the
    /// rendezvous. Bodies may contain only local statements (no nested
    /// rendezvous).
    Accept(AcceptArm),
    /// Selective wait over several accept alternatives with optional
    /// guards.
    Select(Vec<SelectBranch>),
}

/// An accept arm: entry, formal parameters, and rendezvous body.
#[derive(Clone, PartialEq, Debug)]
pub struct AcceptArm {
    /// Entry name.
    pub entry: String,
    /// Formal parameter names bound to the call's arguments.
    pub params: Vec<String>,
    /// The rendezvous body (local statements only).
    pub body: Vec<AdaStmt>,
}

/// One branch of a selective wait.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectBranch {
    /// Optional boolean guard (`when G =>`); `None` is open.
    pub guard: Option<Expr>,
    /// The accept alternative.
    pub accept: AcceptArm,
}

impl AdaStmt {
    /// Shorthand for [`AdaStmt::Assign`].
    pub fn assign(var: impl Into<String>, expr: Expr) -> Self {
        AdaStmt::Assign(var.into(), expr)
    }

    /// Shorthand for [`AdaStmt::EntryCall`].
    pub fn call(task: impl Into<String>, entry: impl Into<String>, args: Vec<Expr>) -> Self {
        AdaStmt::EntryCall {
            task: task.into(),
            entry: entry.into(),
            args,
        }
    }

    /// Shorthand for a parameterless [`AdaStmt::Accept`].
    pub fn accept(entry: impl Into<String>, body: Vec<AdaStmt>) -> Self {
        AdaStmt::Accept(AcceptArm {
            entry: entry.into(),
            params: Vec::new(),
            body,
        })
    }

    /// Shorthand for an [`AdaStmt::Accept`] with parameters.
    pub fn accept_with(entry: impl Into<String>, params: &[&str], body: Vec<AdaStmt>) -> Self {
        AdaStmt::Accept(AcceptArm {
            entry: entry.into(),
            params: params.iter().map(|s| (*s).to_owned()).collect(),
            body,
        })
    }
}

/// An ADA task: name, declared entries, locals, and body.
#[derive(Clone, PartialEq, Debug)]
pub struct AdaTask {
    /// Task name.
    pub name: String,
    /// Entry names this task accepts.
    pub entries: Vec<String>,
    /// Local variables with initial values.
    pub locals: Vec<(String, Value)>,
    /// The task body.
    pub body: Vec<AdaStmt>,
}

impl AdaTask {
    /// Creates a task.
    pub fn new(name: impl Into<String>, body: Vec<AdaStmt>) -> Self {
        Self {
            name: name.into(),
            entries: Vec::new(),
            locals: Vec::new(),
            body,
        }
    }

    /// Declares an entry.
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entries.push(name.into());
        self
    }

    /// Declares a local variable.
    pub fn local(mut self, name: impl Into<String>, init: impl Into<Value>) -> Self {
        self.locals.push((name.into(), init.into()));
        self
    }
}

/// An ADA program: a closed set of tasks.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AdaProgram {
    /// The tasks.
    pub tasks: Vec<AdaTask>,
}

impl AdaProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task.
    pub fn task(mut self, t: AdaTask) -> Self {
        self.tasks.push(t);
        self
    }

    /// Index of the task named `name`.
    pub fn task_index(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let server = AdaTask::new(
            "server",
            vec![AdaStmt::accept_with(
                "Put",
                &["x"],
                vec![AdaStmt::assign("slot", Expr::var("x"))],
            )],
        )
        .entry("Put")
        .local("slot", 0i64);
        let client = AdaTask::new(
            "client",
            vec![AdaStmt::call("server", "Put", vec![Expr::int(5)])],
        );
        let prog = AdaProgram::new().task(server).task(client);
        assert_eq!(prog.tasks.len(), 2);
        assert_eq!(prog.task_index("server"), Some(0));
        assert_eq!(prog.task_index("nobody"), None);
    }
}
