//! Parallel schedule exploration with serial-identical results.
//!
//! [`Explorer::par_for_each_run`] splits the DFS frontier at
//! [`Explorer::split_depth`] into subtree work items and drains them with
//! a `std::thread` work pool of [`Explorer::jobs`] workers. Equivalence
//! with the serial oracle is by construction — an *ordered commit*
//! protocol:
//!
//! * The calling thread walks the schedule trie down to the split depth
//!   in DFS order, so work items are indexed by the lexicographic
//!   position of their subtree root, and records the accounting ops
//!   (trie edges and, under [`Explorer::reduce`], sleep-set skips) it
//!   performed between consecutive items (each item's `lead`). Under
//!   reduction each item also carries the sleep set inherited at its
//!   subtree root, so workers resume the sleep-set discipline exactly
//!   where the frontier walk left off.
//! * Workers claim items in index order, explore each subtree
//!   speculatively with purely *local* budgets, and stream every maximal
//!   run — terminal state, full action path, and the ops performed
//!   since the previous run — over a bounded per-item channel.
//! * The calling thread *commits* items strictly in index order,
//!   replaying the serial explorer's accounting edge for edge: step and
//!   run budgets, truncation causes, the depth high-water mark, per-run
//!   probe flushes, and the visitor itself all execute on the calling
//!   thread in exactly the order the serial DFS would produce them.
//!
//! Consequences: the visited run multiset (and order), [`ExploreStats`],
//! early-abort behaviour, and the probe counter sequence are identical to
//! [`Explorer::for_each_run`] for every `jobs`/`split_depth` setting, and
//! the visitor needs no `Send`/`Sync` bound. Speculative work past a
//! global budget is cut short by a cancellation flag plus channel
//! hang-up. State pruning (`prune: true`) needs a shared seen-set whose
//! hit pattern is schedule-order-dependent, so it falls back to the
//! serial path.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gem_obs::{ambient, set_thread_label, NoopProbe, Probe};

use crate::explore::{flush_final, flush_run, ExploreStats, Explorer, System, TruncationReason};

/// Worker stacks match the serial caller's headroom: the subtree DFS
/// recurses up to `max_depth` frames (10k by default).
const WORKER_STACK: usize = 32 * 1024 * 1024;

/// Per-item channel bound: backpressure that caps speculative memory at
/// roughly `jobs × ITEM_CHANNEL_CAP` in-flight runs.
const ITEM_CHANNEL_CAP: usize = 128;

/// One run-length-encoded slice of the serial explorer's accounting
/// stream: trie edges (step debit plus run check each) and sleep-set
/// skips (a `sleep_skipped` credit, never a budget event). Workers and
/// the frontier walk record these; the committer replays them in order.
#[derive(Clone, Copy, Debug)]
enum ReplayOp {
    /// `n` consecutive trie edges.
    Edges(usize),
    /// `n` enabled actions skipped by the sleep set at one node.
    Skips(usize),
    /// One trie edge whose child-sleep filter made independence-oracle
    /// queries. Kept separate from [`ReplayOp::Edges`] (and never
    /// merged) because the serial DFS counts an edge's oracle answers
    /// *after* that edge's step-cap check — a truncated replay must not
    /// attribute queries for edges the serial search never attempted.
    OracleEdge {
        /// Queries answered "independent" at this edge.
        grants: u32,
        /// Queries answered "dependent" at this edge.
        denials: u32,
    },
}

/// Appends `op` to an op stream, merging into the previous op when both
/// are the same kind (keeps streams short without reordering anything).
/// `OracleEdge` ops never merge: each carries per-edge counts that must
/// replay at their own step-cap boundary.
fn push_op(ops: &mut Vec<ReplayOp>, op: ReplayOp) {
    match (ops.last_mut(), op) {
        (Some(ReplayOp::Edges(n)), ReplayOp::Edges(m)) => *n += m,
        (Some(ReplayOp::Skips(n)), ReplayOp::Skips(m)) => *n += m,
        (_, op) => ops.push(op),
    }
}

/// Records one trie edge whose child-sleep filter was just computed:
/// a plain edge when no oracle queries were made, an [`ReplayOp::OracleEdge`]
/// carrying the per-edge answer counts otherwise.
fn edge_op(grants: usize, denials: usize) -> ReplayOp {
    if grants + denials == 0 {
        ReplayOp::Edges(1)
    } else {
        ReplayOp::OracleEdge {
            grants: grants as u32,
            denials: denials as u32,
        }
    }
}

/// Child-sleep filter shared by the frontier walk and the workers:
/// keeps the sleep entries independent of `action` at `state` (the
/// pre-apply state, exactly like the serial DFS), returning the
/// grant/denial counts for op-stream attribution.
fn filter_sleep<S: System>(
    sys: &S,
    state: &S::State,
    action: &S::Action,
    cur_sleep: &[S::Action],
) -> (Vec<S::Action>, usize, usize) {
    let mut granted = Vec::with_capacity(cur_sleep.len());
    let (mut grants, mut denials) = (0, 0);
    for b in cur_sleep {
        if sys.independent(state, action, b) {
            grants += 1;
            granted.push(b.clone());
        } else {
            denials += 1;
        }
    }
    (granted, grants, denials)
}

/// One deferred gauge write from worker-side system code (see
/// [`DeferGauges`]).
#[derive(Clone, Debug)]
enum GaugeOp {
    /// `gauge_set(name, value)`.
    Set(String, u64),
    /// `gauge_max(name, value)`.
    Max(String, u64),
}

/// Worker-side ambient wrapper fixing gauge fan-in semantics. Counters,
/// timers, and histogram samples forward straight through — they are
/// commutative totals, so arrival order cannot change the aggregate.
/// Gauge writes are order-dependent (`gauge_set` is last-write-wins), so
/// racing them from concurrently-exploring workers would make the final
/// value depend on thread scheduling. Instead each worker defers its
/// gauge writes and ships them with the item's tail; the committer
/// replays them in item-commit (serial DFS) order, so on completed
/// sweeps `gauge_set` resolves to last-commit-wins in DFS order and
/// `gauge_max` to the max across workers — the serial outcome whenever
/// the DFS-final write lies inside a committed subtree (frontier-walk
/// writes replay eagerly, before any worker's, since they happen on the
/// calling thread during [`build_frontier`]). Either way the result is a
/// deterministic function of the schedule trie, never of thread timing.
struct DeferGauges {
    inner: Arc<dyn Probe>,
    deferred: Mutex<Vec<GaugeOp>>,
}

impl DeferGauges {
    fn new(inner: Arc<dyn Probe>) -> Self {
        Self {
            inner,
            deferred: Mutex::new(Vec::new()),
        }
    }

    /// Takes the gauge writes deferred since the last drain. Called at
    /// each item boundary on the owning worker thread.
    fn drain(&self) -> Vec<GaugeOp> {
        std::mem::take(&mut *self.deferred.lock().expect("gauge defer poisoned"))
    }
}

impl Probe for DeferGauges {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
    fn add(&self, name: &str, delta: u64) {
        self.inner.add(name, delta);
    }
    fn time_ns(&self, name: &str, nanos: u64) {
        self.inner.time_ns(name, nanos);
    }
    fn record(&self, name: &str, value: u64) {
        self.inner.record(name, value);
    }
    fn span_enter(&self, name: &str) {
        self.inner.span_enter(name);
    }
    fn span_exit(&self, name: &str, nanos: u64) {
        self.inner.span_exit(name, nanos);
    }
    fn gauge_set(&self, name: &str, value: u64) {
        self.deferred
            .lock()
            .expect("gauge defer poisoned")
            .push(GaugeOp::Set(name.to_owned(), value));
    }
    fn gauge_max(&self, name: &str, value: u64) {
        self.deferred
            .lock()
            .expect("gauge defer poisoned")
            .push(GaugeOp::Max(name.to_owned(), value));
    }
}

/// Per-item worker telemetry, shipped with the item's tail and emitted
/// by the committer under `worker.<k>.*` probe keys. Collected only when
/// the explicit probe is enabled, so the Noop path pays nothing.
struct ItemTelemetry {
    /// Stable pool ordinal of the worker that ran the item (the `k` in
    /// `worker.<k>.*` and the `worker-<k>` trace lane).
    worker: usize,
    /// Trie edges applied in the subtree, speculation included — on
    /// exhaustive uncancelled sweeps these sum (with
    /// `explore.frontier.steps`) to the serial `explore.steps`.
    steps: u64,
    /// Maximal runs streamed — on exhaustive uncancelled sweeps these
    /// sum to the serial `explore.runs`.
    leaves: u64,
    /// Nanoseconds spent exploring (item wall time minus send blocks).
    busy_ns: u64,
    /// Nanoseconds blocked sending leaves to the committer.
    idle_ns: u64,
    /// Per-leaf send-block durations, folded into the
    /// `worker.<k>.commit_lag_ns` histogram at commit.
    lag_ns: Vec<u64>,
}

/// One frontier subtree, identified by its DFS (lexicographic) position.
struct WorkItem<S: System> {
    /// State at the subtree root.
    state: S::State,
    /// Actions from the system's initial state to the subtree root.
    prefix: Vec<S::Action>,
    /// Accounting ops the frontier walk performed since emitting the
    /// previous item; the committer replays them before this item's runs.
    lead: Vec<ReplayOp>,
    /// Sleep set inherited at the subtree root (empty unless
    /// [`Explorer::reduce`]). Unfiltered: the worker's own node-entry
    /// partition intersects it with the enabled set.
    sleep: Vec<S::Action>,
}

/// Worker → committer message for one item's stream.
enum Msg<S: System> {
    /// One maximal run of the subtree, in subtree DFS order.
    Leaf {
        /// Accounting ops since the previous leaf (or since the subtree
        /// root, for the first leaf).
        pre: Vec<ReplayOp>,
        /// True if the run was cut at [`Explorer::max_depth`] while
        /// actions were still enabled.
        depth_limited: bool,
        /// Full action path from the initial state.
        path: Vec<S::Action>,
        /// Terminal state of the run.
        state: S::State,
    },
    /// End of the item's stream.
    Tail {
        /// Accounting ops after the last leaf (speculative overshoot of a
        /// local budget, or trailing fully-slept nodes; empty when the
        /// subtree was exhausted without either).
        post: Vec<ReplayOp>,
        /// False if a local budget stopped the worker with unexplored
        /// edges remaining in the subtree.
        finished: bool,
        /// Worker attribution for the item (`None` when the probe is
        /// disabled).
        telemetry: Option<ItemTelemetry>,
        /// Gauge writes deferred by [`DeferGauges`], replayed by the
        /// committer in item order (empty without an ambient probe).
        gauges: Vec<GaugeOp>,
    },
}

/// Collects the work items by walking the trie down to the split depth in
/// DFS order, plus the trailing ops performed after the last item (under
/// reduction a subtree can be pruned entirely, leaving edges and skips
/// with no following item). Every op of the walk is charged to exactly
/// one item's `lead` or to the tail, so the committer's replayed sequence
/// equals the serial explorer's.
fn build_frontier<S: System>(explorer: &Explorer, sys: &S) -> (Vec<WorkItem<S>>, Vec<ReplayOp>) {
    let mut items = Vec::new();
    let mut path = Vec::new();
    let mut ops = Vec::new();
    frontier_dfs(
        explorer,
        sys,
        sys.initial(),
        &mut path,
        Vec::new(),
        &mut ops,
        &mut items,
    );
    (items, ops)
}

fn frontier_dfs<S: System>(
    explorer: &Explorer,
    sys: &S,
    state: S::State,
    path: &mut Vec<S::Action>,
    sleep: Vec<S::Action>,
    ops: &mut Vec<ReplayOp>,
    items: &mut Vec<WorkItem<S>>,
) {
    if path.len() < explorer.split_depth && path.len() < explorer.max_depth {
        let actions = sys.enabled(&state);
        if !actions.is_empty() {
            // Sleep-set partition, mirroring the serial DFS node entry.
            let (awake, mut cur_sleep) = if explorer.reduce {
                let cur_sleep: Vec<S::Action> =
                    sleep.into_iter().filter(|b| actions.contains(b)).collect();
                let awake: Vec<S::Action> = actions
                    .iter()
                    .filter(|a| !cur_sleep.contains(a))
                    .cloned()
                    .collect();
                let skipped = actions.len() - awake.len();
                if skipped > 0 {
                    push_op(ops, ReplayOp::Skips(skipped));
                }
                if awake.is_empty() {
                    // Fully-slept node: no item, no run — the charged
                    // skips ride with the next item (or the tail).
                    return;
                }
                (awake, cur_sleep)
            } else {
                (actions, Vec::new())
            };
            for action in awake {
                let (child_sleep, grants, denials) = if explorer.reduce {
                    filter_sleep(sys, &state, &action, &cur_sleep)
                } else {
                    (Vec::new(), 0, 0)
                };
                let mut next = state.clone();
                sys.apply(&mut next, &action);
                push_op(ops, edge_op(grants, denials));
                path.push(action);
                frontier_dfs(explorer, sys, next, path, child_sleep, ops, items);
                let action = path.pop().expect("path underflow");
                if explorer.reduce {
                    cur_sleep.push(action);
                }
            }
            return;
        }
    }
    items.push(WorkItem {
        state,
        prefix: path.clone(),
        lead: std::mem::take(ops),
        sleep,
    });
}

/// Why a worker's subtree walk ended early.
enum Stop {
    /// A local budget fired; the subtree has unexplored edges.
    Truncated,
    /// Cancelled or the committer hung up; send nothing further.
    Abort,
}

/// Per-item worker state: local budgets counted from the subtree root.
/// Local caps equal the global caps, so a worker always streams at least
/// as many runs as the committer's global replay can consume.
struct Worker<'a, S: System> {
    explorer: &'a Explorer,
    sys: &'a S,
    cancel: &'a AtomicBool,
    tx: SyncSender<Msg<S>>,
    runs: usize,
    steps: usize,
    pending_ops: Vec<ReplayOp>,
    /// Stable pool ordinal, for `worker.<k>.*` attribution.
    worker: usize,
    /// True when the explicit probe is enabled: collect per-item
    /// telemetry (timestamps and commit-lag samples).
    telemetry: bool,
    /// Nanoseconds this item's leaf sends blocked on the committer.
    idle_ns: u64,
    /// Per-leaf send-block durations for the commit-lag histogram.
    lag_ns: Vec<u64>,
}

impl<S: System> Worker<'_, S> {
    fn run_item(mut self, item: WorkItem<S>, defer: Option<&DeferGauges>) {
        let started = self.telemetry.then(Instant::now);
        let mut path = item.prefix;
        let mut state = item.state;
        let finished = match self.subtree(&mut state, &mut path, item.sleep) {
            ControlFlow::Continue(()) => true,
            ControlFlow::Break(Stop::Truncated) => false,
            ControlFlow::Break(Stop::Abort) => return,
        };
        let telemetry = started.map(|t0| {
            let total = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // One duration slice per work item, emitted from the worker
            // thread itself so trace sinks can draw per-worker lanes
            // (gaps between slices are idle/commit-lag time). Timers are
            // outside the report determinism contract, so this par-only
            // key never enters serial-vs-parallel comparisons.
            ambient::time_ns("worker.item", total);
            ItemTelemetry {
                worker: self.worker,
                steps: self.steps as u64,
                leaves: self.runs as u64,
                busy_ns: total.saturating_sub(self.idle_ns),
                idle_ns: self.idle_ns,
                lag_ns: std::mem::take(&mut self.lag_ns),
            }
        });
        let _ = self.tx.send(Msg::Tail {
            post: std::mem::take(&mut self.pending_ops),
            finished,
            telemetry,
            gauges: defer.map(DeferGauges::drain).unwrap_or_default(),
        });
    }

    fn charge(&mut self, op: ReplayOp) {
        push_op(&mut self.pending_ops, op);
    }

    /// Mirrors the serial `Explorer::dfs` exactly (minus pruning, which
    /// forces the serial path): run check at node entry, sleep-set
    /// partition, step check before each edge application, leaves
    /// streamed in DFS order. Like the serial DFS, checkpoint-capable
    /// systems walk one shared state with apply/undo (one clone per
    /// *leaf* for the streamed message) instead of one clone per edge.
    fn subtree(
        &mut self,
        state: &mut S::State,
        path: &mut Vec<S::Action>,
        sleep: Vec<S::Action>,
    ) -> ControlFlow<Stop> {
        if self.cancel.load(Ordering::Relaxed) {
            return ControlFlow::Break(Stop::Abort);
        }
        if self.runs >= self.explorer.max_runs {
            return ControlFlow::Break(Stop::Truncated);
        }
        let actions = self.sys.enabled(state);
        if actions.is_empty() || path.len() >= self.explorer.max_depth {
            let depth_limited = path.len() >= self.explorer.max_depth && !actions.is_empty();
            let msg = Msg::Leaf {
                pre: std::mem::take(&mut self.pending_ops),
                depth_limited,
                path: path.clone(),
                state: state.clone(),
            };
            if self.telemetry {
                // Commit lag: how long this leaf blocked on the bounded
                // channel waiting for the committer to catch up.
                let t0 = Instant::now();
                if self.tx.send(msg).is_err() {
                    return ControlFlow::Break(Stop::Abort);
                }
                let lag = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.idle_ns = self.idle_ns.saturating_add(lag);
                self.lag_ns.push(lag);
            } else if self.tx.send(msg).is_err() {
                return ControlFlow::Break(Stop::Abort);
            }
            self.runs += 1;
            return ControlFlow::Continue(());
        }
        let (awake, mut cur_sleep) = if self.explorer.reduce {
            let cur_sleep: Vec<S::Action> =
                sleep.into_iter().filter(|b| actions.contains(b)).collect();
            let awake: Vec<S::Action> = actions
                .iter()
                .filter(|a| !cur_sleep.contains(a))
                .cloned()
                .collect();
            let skipped = actions.len() - awake.len();
            if skipped > 0 {
                self.charge(ReplayOp::Skips(skipped));
            }
            if awake.is_empty() {
                return ControlFlow::Continue(());
            }
            (awake, cur_sleep)
        } else {
            (actions, Vec::new())
        };
        for action in awake {
            if self.steps >= self.explorer.max_steps {
                return ControlFlow::Break(Stop::Truncated);
            }
            // Child sleep against the pre-apply state, exactly like the
            // serial DFS (see there for why).
            let (child_sleep, grants, denials) = if self.explorer.reduce {
                filter_sleep(self.sys, state, &action, &cur_sleep)
            } else {
                (Vec::new(), 0, 0)
            };
            let flow = if let Some(cp) = self.sys.checkpoint(state) {
                self.sys.apply(state, &action);
                self.steps += 1;
                self.charge(edge_op(grants, denials));
                path.push(action);
                let flow = self.subtree(state, path, child_sleep);
                let action = path.pop().expect("path underflow");
                self.sys.undo(state, cp);
                if self.explorer.reduce {
                    cur_sleep.push(action);
                }
                flow
            } else {
                let mut next = state.clone();
                self.sys.apply(&mut next, &action);
                self.steps += 1;
                self.charge(edge_op(grants, denials));
                path.push(action);
                let flow = self.subtree(&mut next, path, child_sleep);
                let action = path.pop().expect("path underflow");
                if self.explorer.reduce {
                    cur_sleep.push(action);
                }
                flow
            };
            flow?;
        }
        ControlFlow::Continue(())
    }
}

/// Replays one trie edge in the committer: step check before the edge is
/// charged, then the edge's oracle answers (serial counts them between
/// the step check and the application), run check at entry to the node
/// it leads into — the exact serial order.
fn consume_edge(explorer: &Explorer, stats: &mut ExploreStats) -> ControlFlow<()> {
    consume_oracle_edge(explorer, stats, 0, 0)
}

fn consume_oracle_edge(
    explorer: &Explorer,
    stats: &mut ExploreStats,
    grants: u32,
    denials: u32,
) -> ControlFlow<()> {
    if stats.steps >= explorer.max_steps {
        stats.truncation = Some(TruncationReason::StepLimit);
        return ControlFlow::Break(());
    }
    stats.oracle_grants += grants as usize;
    stats.oracle_denials += denials as usize;
    stats.steps += 1;
    if stats.runs >= explorer.max_runs {
        stats.truncation = Some(TruncationReason::RunLimit);
        return ControlFlow::Break(());
    }
    ControlFlow::Continue(())
}

/// Replays an op stream: edges debit budgets (and may fire a bound, which
/// stops the replay exactly where serial would have stopped — any trailing
/// ops belong to nodes serial never reached); skips only credit
/// `sleep_skipped`, never a budget event, matching the serial partition.
fn consume_ops(explorer: &Explorer, stats: &mut ExploreStats, ops: &[ReplayOp]) -> ControlFlow<()> {
    for op in ops {
        match *op {
            ReplayOp::Edges(n) => {
                for _ in 0..n {
                    consume_edge(explorer, stats)?;
                }
            }
            ReplayOp::Skips(n) => stats.sleep_skipped += n,
            ReplayOp::OracleEdge { grants, denials } => {
                consume_oracle_edge(explorer, stats, grants, denials)?;
            }
        }
    }
    ControlFlow::Continue(())
}

/// Trie edges in an op stream, for frontier-walk step attribution
/// (`explore.frontier.steps`). Skips are not edges.
fn op_edges(ops: &[ReplayOp]) -> u64 {
    ops.iter()
        .map(|op| match *op {
            ReplayOp::Edges(n) => n as u64,
            ReplayOp::Skips(_) => 0,
            ReplayOp::OracleEdge { .. } => 1,
        })
        .sum()
}

/// Emits one item's worker attribution at commit: `worker.<k>.*`
/// counters plus per-leaf commit-lag histogram samples. On exhaustive
/// uncancelled sweeps `Σ worker.<k>.steps + explore.frontier.steps`
/// equals the serial `explore.steps` and `Σ worker.<k>.leaves` equals
/// the serial `explore.runs`; truncated or aborted commits may leave
/// speculative worker steps uncommitted or tails unreceived.
fn emit_telemetry(probe: &dyn Probe, t: &ItemTelemetry) {
    let k = t.worker;
    probe.add(&format!("worker.{k}.items"), 1);
    probe.add(&format!("worker.{k}.steps"), t.steps);
    probe.add(&format!("worker.{k}.leaves"), t.leaves);
    probe.add(&format!("worker.{k}.busy_ns"), t.busy_ns);
    probe.add(&format!("worker.{k}.idle_ns"), t.idle_ns);
    let key = format!("worker.{k}.commit_lag_ns");
    for &v in &t.lag_ns {
        probe.record(&key, v);
    }
}

impl Explorer {
    /// Resolves [`Explorer::jobs`]: `0` means the machine's available
    /// parallelism (at least 1).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.jobs
        }
    }

    /// Parallel [`Explorer::for_each_run`]: visits the identical run
    /// multiset, in the identical (serial DFS) order, with identical
    /// [`ExploreStats`] and early-abort behaviour, using
    /// [`Explorer::jobs`] worker threads. With `jobs == 1` (the default)
    /// this *is* the serial explorer. See the `par` module source for
    /// the ordered-commit protocol.
    pub fn par_for_each_run<S>(
        &self,
        sys: &S,
        visit: impl FnMut(&S::State, &[S::Action]) -> ControlFlow<()>,
    ) -> ExploreStats
    where
        S: System + Sync,
        S::State: Send,
        S::Action: Send,
    {
        self.par_for_each_run_probed(sys, &NoopProbe, visit)
    }

    /// Parallel [`Explorer::for_each_run_probed`]. `probe` receives the
    /// exact per-run counter sequence of the serial explorer: workers
    /// stream structural data only, while all accounting, probe flushes,
    /// and visitor calls happen on the calling thread in serial DFS
    /// order. Each worker additionally re-installs the calling thread's
    /// ambient probe (captured via `gem_obs::ambient::snapshot`), so
    /// system-internal instrumentation fans into the same sink.
    pub fn par_for_each_run_probed<S>(
        &self,
        sys: &S,
        probe: &dyn Probe,
        mut visit: impl FnMut(&S::State, &[S::Action]) -> ControlFlow<()>,
    ) -> ExploreStats
    where
        S: System + Sync,
        S::State: Send,
        S::Action: Send,
    {
        let jobs = self.effective_jobs();
        // Pruning shares a seen-set across the whole schedule order;
        // a zero run budget never reaches a worker. Both take the serial
        // path, as does a frontier too small to share.
        if jobs <= 1 || self.prune || self.max_runs == 0 {
            return self.for_each_run_probed(sys, probe, visit);
        }
        let (mut items, tail_ops) = build_frontier(self, sys);
        if items.len() <= 1 {
            return self.for_each_run_probed(sys, probe, visit);
        }

        let leads: Vec<Vec<ReplayOp>> = items
            .iter_mut()
            .map(|item| std::mem::take(&mut item.lead))
            .collect();
        let slots: Vec<Mutex<Option<WorkItem<S>>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let mut senders = Vec::with_capacity(slots.len());
        let mut receivers = Vec::with_capacity(slots.len());
        for _ in 0..slots.len() {
            let (tx, rx) = mpsc::sync_channel::<Msg<S>>(ITEM_CHANNEL_CAP);
            senders.push(Mutex::new(Some(tx)));
            receivers.push(rx);
        }
        let next = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        let ambient_probe = ambient::snapshot();
        let workers = jobs.min(slots.len());
        let telemetry = probe.enabled();

        let mut stats = ExploreStats::default();
        let mut flushed_steps = 0usize;

        if telemetry {
            // Frontier-walk attribution: edges the calling thread applied
            // before any worker ran. Together with `worker.<k>.steps`
            // these partition the serial `explore.steps` on exhaustive
            // uncancelled sweeps.
            let frontier_steps =
                leads.iter().map(|ops| op_edges(ops)).sum::<u64>() + op_edges(&tail_ops);
            probe.add("explore.frontier.steps", frontier_steps);
            probe.add("explore.frontier.items", slots.len() as u64);
        }

        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let senders = &senders;
                let next = &next;
                let cancel = &cancel;
                let ambient_probe = ambient_probe.clone();
                std::thread::Builder::new()
                    .name(format!("gem-explore-{w}"))
                    .stack_size(WORKER_STACK)
                    .spawn_scoped(scope, move || {
                        set_thread_label(format!("worker-{w}"));
                        // Wrap the inherited ambient probe so gauge
                        // writes defer to the committer (see
                        // `DeferGauges`); everything else fans straight
                        // into the same sink.
                        let defer = ambient_probe.map(|p| Arc::new(DeferGauges::new(p)));
                        let _ambient = defer.clone().map(|d| ambient::install(d as Arc<dyn Probe>));
                        loop {
                            if cancel.load(Ordering::Relaxed) {
                                break;
                            }
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= slots.len() {
                                break;
                            }
                            let item = slots[idx]
                                .lock()
                                .unwrap()
                                .take()
                                .expect("item claimed once");
                            let tx = senders[idx]
                                .lock()
                                .unwrap()
                                .take()
                                .expect("sender claimed once");
                            Worker {
                                explorer: self,
                                sys,
                                cancel,
                                tx,
                                runs: 0,
                                steps: 0,
                                pending_ops: Vec::new(),
                                worker: w,
                                telemetry,
                                idle_ns: 0,
                                lag_ns: Vec::new(),
                            }
                            .run_item(item, defer.as_deref());
                        }
                    })
                    .expect("spawn explore worker");
            }

            // Ordered commit: the calling thread drains item streams in
            // index order and replays serial accounting.
            let mut last_unfinished = false;
            let mut stopped = false;
            'items: for (idx, rx) in receivers.into_iter().enumerate() {
                last_unfinished = false;
                if consume_ops(self, &mut stats, &leads[idx]).is_break() {
                    stopped = true;
                    break 'items;
                }
                loop {
                    match rx.recv() {
                        Ok(Msg::Leaf {
                            pre,
                            depth_limited,
                            path,
                            state,
                        }) => {
                            if consume_ops(self, &mut stats, &pre).is_break() {
                                stopped = true;
                                break 'items;
                            }
                            if depth_limited {
                                stats.depth_limited_runs += 1;
                                if stats.truncation.is_none() {
                                    stats.truncation = Some(TruncationReason::DepthLimit);
                                }
                            }
                            stats.runs += 1;
                            if self.reduce {
                                stats.por_runs += 1;
                            }
                            stats.max_depth_seen = stats.max_depth_seen.max(path.len());
                            if probe.enabled() {
                                flush_run(probe, &stats, &mut flushed_steps);
                            }
                            if visit(&state, &path).is_break() {
                                stopped = true;
                                break 'items;
                            }
                        }
                        Ok(Msg::Tail {
                            post,
                            finished,
                            telemetry,
                            gauges,
                        }) => {
                            // Deferred gauge writes replay here, in item
                            // order, into the same ambient sink worker
                            // system code targeted.
                            for op in gauges {
                                match op {
                                    GaugeOp::Set(name, v) => ambient::gauge_set(&name, v),
                                    GaugeOp::Max(name, v) => ambient::gauge_max(&name, v),
                                }
                            }
                            if let Some(t) = &telemetry {
                                emit_telemetry(probe, t);
                            }
                            if consume_ops(self, &mut stats, &post).is_break() {
                                stopped = true;
                                break 'items;
                            }
                            last_unfinished = !finished;
                            continue 'items;
                        }
                        // A worker died mid-item (visitor-independent
                        // panic in `System` code); stop committing — the
                        // scope join below re-raises the panic.
                        Err(_) => {
                            stopped = true;
                            break 'items;
                        }
                    }
                }
            }
            if !stopped && last_unfinished {
                // The last worker stopped on a local budget with edges
                // left in its subtree: serial would attempt exactly one
                // more edge there before its own bound fires.
                let _ = consume_edge(self, &mut stats);
            } else if !stopped {
                // Ops the frontier walk performed after the last item —
                // edges into (and skips at) trailing fully-slept nodes
                // that produced no work item. Serial walks them after the
                // last run; a truncated or aborted commit never gets
                // there.
                let _ = consume_ops(self, &mut stats, &tail_ops);
            }
            cancel.store(true, Ordering::Relaxed);
            // Unconsumed receivers were dropped by the loop, so blocked
            // workers fail their next send and exit promptly.
        });

        if probe.enabled() {
            flush_final(probe, &stats, flushed_steps);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::find_deadlock;

    /// Asymmetric toy system: counter `i` steps to `i + 1`, so subtree
    /// sizes differ wildly across the frontier — a stress for the
    /// lead/pre/post edge accounting.
    struct Ragged {
        n: usize,
        stuck: bool,
    }

    // POR: conservative — the POR differentials use `PorRagged` below.
    impl System for Ragged {
        type State = Vec<u8>;
        type Action = usize;
        type Checkpoint = ();

        fn initial(&self) -> Vec<u8> {
            vec![0; self.n]
        }

        fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
            if self.stuck && state.iter().enumerate().any(|(i, &c)| usize::from(c) > i) {
                return Vec::new();
            }
            (0..self.n)
                .filter(|&i| usize::from(state[i]) < i + 1)
                .collect()
        }

        fn apply(&self, state: &mut Vec<u8>, &i: &usize) {
            state[i] += 1;
        }

        fn is_complete(&self, state: &Vec<u8>) -> bool {
            state
                .iter()
                .enumerate()
                .all(|(i, &c)| usize::from(c) == i + 1)
        }
    }

    /// `Ragged` with an independence oracle claiming distinct counters
    /// commute. In the `stuck` variant that claim is *unsound* for the
    /// system's semantics (one counter's step can disable another's), but
    /// the serial-vs-parallel differential only needs both sides to
    /// honour the same oracle — an adversarial stress for the op-stream
    /// replay, since fully-slept nodes then appear mid-frontier.
    struct PorRagged(Ragged);

    impl System for PorRagged {
        type State = Vec<u8>;
        type Action = usize;
        type Checkpoint = ();

        fn initial(&self) -> Vec<u8> {
            self.0.initial()
        }
        fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
            self.0.enabled(state)
        }
        fn apply(&self, state: &mut Vec<u8>, action: &usize) {
            self.0.apply(state, action);
        }
        fn is_complete(&self, state: &Vec<u8>) -> bool {
            self.0.is_complete(state)
        }
        fn independent(&self, _state: &Vec<u8>, a: &usize, b: &usize) -> bool {
            a != b
        }
    }

    /// Runs serial and parallel exploration and asserts identical stats
    /// and identical visited (state, path) sequences.
    fn assert_equiv<S>(explorer: &Explorer, sys: &S)
    where
        S: System<State = Vec<u8>, Action = usize> + Sync,
    {
        let mut serial_seen: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
        let serial = explorer.for_each_run(sys, |s, p| {
            serial_seen.push((s.clone(), p.to_vec()));
            ControlFlow::Continue(())
        });
        let mut par_seen: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
        let par = explorer.par_for_each_run(sys, |s, p| {
            par_seen.push((s.clone(), p.to_vec()));
            ControlFlow::Continue(())
        });
        assert_eq!(serial, par, "stats diverge for {explorer:?}");
        assert_eq!(serial_seen, par_seen, "runs diverge for {explorer:?}");
    }

    #[test]
    fn exhaustive_equivalence_across_jobs_and_splits() {
        let sys = Ragged { n: 3, stuck: false };
        for jobs in [2, 3, 4] {
            for split_depth in [0, 1, 2, 3, 5] {
                assert_equiv(
                    &Explorer {
                        jobs,
                        split_depth,
                        ..Explorer::default()
                    },
                    &sys,
                );
            }
        }
    }

    #[test]
    fn truncated_equivalence_run_and_step_limits() {
        let sys = Ragged { n: 3, stuck: false };
        let total = Explorer::default().for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        // Sweep budgets across the whole range, including the exact
        // budget (no truncation) and off-by-one around it.
        for max_runs in 1..=total.runs + 1 {
            assert_equiv(
                &Explorer {
                    max_runs,
                    jobs: 4,
                    split_depth: 2,
                    ..Explorer::default()
                },
                &sys,
            );
        }
        for max_steps in [1, 2, 3, 5, total.steps - 1, total.steps, total.steps + 1] {
            assert_equiv(
                &Explorer {
                    max_steps,
                    jobs: 4,
                    split_depth: 2,
                    ..Explorer::default()
                },
                &sys,
            );
        }
    }

    #[test]
    fn depth_limited_equivalence() {
        let sys = Ragged { n: 3, stuck: false };
        for max_depth in [1, 2, 3, 4] {
            assert_equiv(
                &Explorer {
                    max_depth,
                    jobs: 4,
                    split_depth: 2,
                    ..Explorer::default()
                },
                &sys,
            );
        }
    }

    #[test]
    fn combined_budgets_equivalence() {
        let sys = Ragged { n: 3, stuck: false };
        for (max_runs, max_steps, max_depth) in
            [(7, usize::MAX, 4), (100, 17, 10_000), (5, 9, 3), (1, 1, 1)]
        {
            assert_equiv(
                &Explorer {
                    max_runs,
                    max_steps,
                    max_depth,
                    jobs: 2,
                    split_depth: 1,
                    ..Explorer::default()
                },
                &sys,
            );
        }
    }

    #[test]
    fn por_equivalence_across_jobs_and_splits() {
        for stuck in [false, true] {
            let sys = PorRagged(Ragged { n: 3, stuck });
            for jobs in [2, 4] {
                for split_depth in [0, 1, 2, 3, 5] {
                    assert_equiv(
                        &Explorer {
                            reduce: true,
                            jobs,
                            split_depth,
                            ..Explorer::default()
                        },
                        &sys,
                    );
                }
            }
        }
    }

    #[test]
    fn por_truncated_equivalence() {
        let sys = PorRagged(Ragged { n: 3, stuck: true });
        let reduce = Explorer {
            reduce: true,
            ..Explorer::default()
        };
        let total = reduce.for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert!(total.sleep_skipped > 0, "{total:?}");
        for max_runs in 1..=total.runs + 1 {
            assert_equiv(
                &Explorer {
                    max_runs,
                    jobs: 4,
                    split_depth: 2,
                    ..reduce
                },
                &sys,
            );
        }
        for max_steps in [1, 2, 3, 5, total.steps - 1, total.steps, total.steps + 1] {
            assert_equiv(
                &Explorer {
                    max_steps,
                    jobs: 4,
                    split_depth: 2,
                    ..reduce
                },
                &sys,
            );
        }
        for max_depth in [1, 2, 3, 4] {
            assert_equiv(
                &Explorer {
                    max_depth,
                    jobs: 4,
                    split_depth: 2,
                    ..reduce
                },
                &sys,
            );
        }
    }

    /// Drops the parallel-only attribution (`worker.<k>.*` counters and
    /// histograms, `explore.frontier.*`) a parallel report carries on
    /// top of the serial-identical counter sequence.
    fn strip_attribution(report: &mut gem_obs::Report) {
        report
            .counters
            .retain(|k, _| !k.starts_with("worker.") && !k.starts_with("explore.frontier."));
        report.hists.retain(|k, _| !k.starts_with("worker."));
    }

    /// Sums `worker.<k>.<suffix>` counters across all workers.
    fn worker_sum(report: &gem_obs::Report, suffix: &str) -> u64 {
        report
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("worker.") && k.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }

    #[test]
    fn por_probe_counter_sequence_matches_serial() {
        use gem_obs::StatsProbe;
        let sys = PorRagged(Ragged { n: 3, stuck: false });
        let explorer = Explorer {
            reduce: true,
            ..Explorer::default()
        };
        let serial_probe = StatsProbe::new();
        explorer.for_each_run_probed(&sys, &serial_probe, |_, _| ControlFlow::Continue(()));
        let par_probe = StatsProbe::new();
        Explorer {
            jobs: 4,
            split_depth: 2,
            ..explorer
        }
        .par_for_each_run_probed(&sys, &par_probe, |_, _| ControlFlow::Continue(()));
        let serial_report = serial_probe.report();
        let mut par_report = par_probe.report();
        // Exhaustive uncancelled sweep: the attribution partitions the
        // serial totals exactly.
        assert_eq!(
            worker_sum(&par_report, ".leaves"),
            serial_report.counters["explore.runs"]
        );
        assert_eq!(
            par_report.counters["explore.frontier.steps"] + worker_sum(&par_report, ".steps"),
            serial_report.counters["explore.steps"]
        );
        strip_attribution(&mut par_report);
        assert_eq!(serial_report.to_json(), par_report.to_json());
        assert!(serial_probe.counter("explore.sleep_skipped") > 0);
        assert!(
            serial_probe.counter("explore.oracle.grants") > 0,
            "PorRagged's oracle grants across distinct counters"
        );
        assert_eq!(
            par_probe.counter("explore.oracle.grants"),
            serial_probe.counter("explore.oracle.grants")
        );
        assert_eq!(
            par_probe.counter("explore.oracle.denials"),
            serial_probe.counter("explore.oracle.denials")
        );
    }

    #[test]
    fn early_break_stops_parallel_search() {
        let sys = Ragged { n: 3, stuck: false };
        let mut count = 0;
        let stats = Explorer {
            jobs: 4,
            split_depth: 2,
            ..Explorer::default()
        }
        .par_for_each_run(&sys, |_, _| {
            count += 1;
            if count == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 3);
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.truncation, None);
    }

    #[test]
    fn parallel_deadlock_witness_matches_serial() {
        let sys = Ragged { n: 3, stuck: true };
        let serial = find_deadlock(&sys, &Explorer::default());
        let par = find_deadlock(
            &sys,
            &Explorer {
                jobs: 4,
                split_depth: 2,
                ..Explorer::default()
            },
        );
        assert!(serial.is_some());
        assert_eq!(serial, par);
    }

    #[test]
    fn probe_counter_sequence_matches_serial() {
        use gem_obs::StatsProbe;
        let sys = Ragged { n: 3, stuck: false };
        for max_steps in [usize::MAX, 25] {
            let explorer = Explorer {
                max_steps,
                ..Explorer::default()
            };
            let serial_probe = StatsProbe::new();
            explorer.for_each_run_probed(&sys, &serial_probe, |_, _| ControlFlow::Continue(()));
            let par_probe = StatsProbe::new();
            Explorer {
                jobs: 4,
                split_depth: 2,
                ..explorer
            }
            .par_for_each_run_probed(
                &sys,
                &par_probe,
                |_, _| ControlFlow::Continue(()),
            );
            let serial_report = serial_probe.report();
            let mut par_report = par_probe.report();
            if max_steps == usize::MAX {
                // Exhaustive: worker leaves/steps partition the serial
                // totals (truncated sweeps leave speculation
                // uncommitted, so no sum identity there).
                assert_eq!(
                    worker_sum(&par_report, ".leaves"),
                    serial_report.counters["explore.runs"]
                );
                assert_eq!(
                    par_report.counters["explore.frontier.steps"]
                        + worker_sum(&par_report, ".steps"),
                    serial_report.counters["explore.steps"]
                );
                assert!(
                    par_report
                        .hists
                        .keys()
                        .any(|k| k.ends_with(".commit_lag_ns")),
                    "leaf sends record a commit-lag histogram: {:?}",
                    par_report.hists.keys().collect::<Vec<_>>()
                );
            }
            strip_attribution(&mut par_report);
            assert_eq!(serial_report.to_json(), par_report.to_json());
        }
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let explorer = Explorer {
            jobs: 0,
            ..Explorer::default()
        };
        assert!(explorer.effective_jobs() >= 1);
        // And exploration still works through the auto-resolved pool.
        let sys = Ragged { n: 2, stuck: false };
        let serial = Explorer::default().for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        let par = explorer.par_for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(serial, par);
    }

    #[test]
    fn prune_falls_back_to_serial() {
        // Ragged has no control key, but the fallback must not change
        // results either way.
        let sys = Ragged { n: 3, stuck: false };
        let explorer = Explorer {
            prune: true,
            jobs: 4,
            ..Explorer::default()
        };
        let serial = Explorer {
            jobs: 1,
            ..explorer
        }
        .for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        let par = explorer.par_for_each_run(&sys, |_, _| ControlFlow::Continue(()));
        assert_eq!(serial, par);
    }

    #[test]
    fn ambient_probe_is_inherited_by_workers() {
        use gem_obs::StatsProbe;
        use std::sync::Arc;

        /// A system that reports through the ambient probe from inside
        /// `apply` — i.e. from worker threads in parallel mode.
        struct Chatty;
        // POR: conservative — probe-inheritance toy, no oracle needed.
        impl System for Chatty {
            type State = Vec<u8>;
            type Action = usize;
            type Checkpoint = ();
            fn initial(&self) -> Vec<u8> {
                vec![0; 2]
            }
            fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
                (0..2).filter(|&i| state[i] < 2).collect()
            }
            fn apply(&self, state: &mut Vec<u8>, &i: &usize) {
                ambient::add("chatty.applies", 1);
                state[i] += 1;
            }
            fn is_complete(&self, state: &Vec<u8>) -> bool {
                state.iter().all(|&c| c == 2)
            }
        }

        let probe = Arc::new(StatsProbe::new());
        let _guard = ambient::install(probe.clone());
        Explorer {
            jobs: 4,
            split_depth: 1,
            ..Explorer::default()
        }
        .par_for_each_run(&Chatty, |_, _| ControlFlow::Continue(()));
        // Exhaustive, uncancelled exploration applies every trie edge
        // exactly once across the frontier walk and all workers.
        let serial_probe = Arc::new(StatsProbe::new());
        {
            let _g = ambient::install(serial_probe.clone());
            Explorer::default().for_each_run(&Chatty, |_, _| ControlFlow::Continue(()));
        }
        assert_eq!(
            probe.counter("chatty.applies"),
            serial_probe.counter("chatty.applies")
        );
    }

    #[test]
    fn worker_gauge_writes_commit_in_dfs_order() {
        use gem_obs::StatsProbe;
        use std::sync::Arc;

        /// Reports order-sensitive gauges from inside `apply` — the
        /// racy-fan-in case `DeferGauges` exists for.
        struct Gaugey;
        // POR: conservative — gauge fan-in toy, no oracle needed.
        impl System for Gaugey {
            type State = Vec<u8>;
            type Action = usize;
            type Checkpoint = ();
            fn initial(&self) -> Vec<u8> {
                vec![0; 3]
            }
            fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
                (0..3).filter(|&i| state[i] < 2).collect()
            }
            fn apply(&self, state: &mut Vec<u8>, &i: &usize) {
                state[i] += 1;
                ambient::gauge_set("gaugey.last_action", i as u64);
                ambient::gauge_max("gaugey.max_action", i as u64);
            }
            fn is_complete(&self, state: &Vec<u8>) -> bool {
                state.iter().all(|&c| c == 2)
            }
        }

        let serial_probe = Arc::new(StatsProbe::new());
        {
            let _g = ambient::install(serial_probe.clone());
            Explorer::default().for_each_run(&Gaugey, |_, _| ControlFlow::Continue(()));
        }
        let serial = serial_probe.report();
        for (jobs, split_depth) in [(2, 1), (4, 2), (3, 3)] {
            let par_probe = Arc::new(StatsProbe::new());
            {
                let _g = ambient::install(par_probe.clone());
                Explorer {
                    jobs,
                    split_depth,
                    ..Explorer::default()
                }
                .par_for_each_run(&Gaugey, |_, _| ControlFlow::Continue(()));
            }
            let par = par_probe.report();
            // Deferred replay in commit order makes both gauges
            // scheduling-independent and serial-identical.
            assert_eq!(
                par.gauges["gaugey.last_action"], serial.gauges["gaugey.last_action"],
                "gauge_set must be last-commit-wins in DFS order (jobs={jobs})"
            );
            assert_eq!(
                par.gauges["gaugey.max_action"], serial.gauges["gaugey.max_action"],
                "gauge_max must be the max across workers (jobs={jobs})"
            );
        }
    }

    #[test]
    fn workers_label_their_trace_lanes() {
        use gem_obs::ChromeTraceProbe;
        use std::sync::Arc;

        /// Emits a timer from inside `apply` so worker threads show up
        /// in the trace.
        struct Timed;
        // POR: conservative — trace-label toy, no oracle needed.
        impl System for Timed {
            type State = Vec<u8>;
            type Action = usize;
            type Checkpoint = ();
            fn initial(&self) -> Vec<u8> {
                vec![0; 2]
            }
            fn enabled(&self, state: &Vec<u8>) -> Vec<usize> {
                (0..2).filter(|&i| state[i] < 2).collect()
            }
            fn apply(&self, state: &mut Vec<u8>, &i: &usize) {
                ambient::time_ns("timed.apply", 10);
                state[i] += 1;
            }
            fn is_complete(&self, state: &Vec<u8>) -> bool {
                state.iter().all(|&c| c == 2)
            }
        }

        let chrome = Arc::new(ChromeTraceProbe::new());
        let _g = ambient::install(chrome.clone());
        Explorer {
            jobs: 2,
            split_depth: 1,
            ..Explorer::default()
        }
        .par_for_each_run(&Timed, |_, _| ControlFlow::Continue(()));
        let labels = chrome.labels();
        assert!(
            labels.values().any(|l| l.starts_with("worker-")),
            "worker lanes carry worker-<k> labels: {labels:?}"
        );
    }
}
