//! Event parameter values.
//!
//! GEM events carry *data parameters* (§4): an `Assign` event carries the
//! value assigned, a `Send` event the message contents, and so on.
//! Restrictions may compare parameters for equality (e.g. the message-passing
//! restriction of §5: `send ⊳ receive ⊃ send.par1 = receive.par2`).

use std::fmt;

/// A parameter value attached to an event.
///
/// The GEM paper leaves the value domain open ("VALUE"); this reproduction
/// provides the domains its examples need: unit, booleans, integers, and
/// strings, plus pairs for compound data such as `(location, value)`.
///
/// # Examples
///
/// ```
/// use gem_core::Value;
/// let v = Value::pair(Value::Int(3), Value::from("hello"));
/// assert_eq!(v.to_string(), "(3, \"hello\")");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Value {
    /// The unit value, for events without meaningful data.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An ordered pair of values.
    Pair(Box<Value>, Box<Value>),
}

impl Value {
    /// Builds a [`Value::Pair`] from two values.
    pub fn pair(first: Value, second: Value) -> Self {
        Value::Pair(Box::new(first), Box::new(second))
    }

    /// Returns the integer if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string if this value is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the components if this value is a [`Value::Pair`].
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// True if this value is [`Value::Unit`].
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Unit.is_unit());
        assert_eq!(Value::Int(4).as_bool(), None);
        assert_eq!(Value::Unit.as_int(), None);
    }

    #[test]
    fn pair_roundtrip() {
        let p = Value::pair(Value::Int(1), Value::Int(2));
        let (a, b) = p.as_pair().expect("is a pair");
        assert_eq!(a.as_int(), Some(1));
        assert_eq!(b.as_int(), Some(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(Value::default(), Value::Unit);
    }

    #[test]
    fn values_are_ordered() {
        assert!(Value::Unit < Value::Bool(false));
        assert!(Value::Int(1) < Value::Int(2));
    }
}
