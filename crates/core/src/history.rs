//! Histories and valid history sequences (§7).
//!
//! A *history* describes "what has happened so far": a downward-closed
//! subset (prefix) of a computation's events — if `e2` is in a history and
//! `e1 ⇒ e2`, then `e1` is in the history too. A *valid history sequence*
//! (vhs) is a monotonically increasing sequence of histories in which any
//! two events appearing for the first time in the same history are
//! potentially concurrent. A computation can be viewed as the set of all
//! its valid history sequences; temporal restrictions (`◻`, `◇`) are
//! interpreted over them.
//!
//! Enumeration helpers are provided for the verification layer:
//! [`for_each_history`] walks every prefix (order ideal) of a computation
//! exactly once, and [`for_each_linearization`] walks every total
//! interleaving. Both accept visit limits because the counts are
//! exponential in the width of the partial order.

use std::fmt;
use std::ops::ControlFlow;

use crate::{Computation, DenseBitSet, EventId};

/// Error when a set of events is not downward-closed, or an extension step
/// is not enabled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrefixError {
    /// The event whose temporal predecessor is missing.
    pub event: EventId,
    /// A missing predecessor of `event`.
    pub missing: EventId,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not a history: {} requires its temporal predecessor {}",
            self.event, self.missing
        )
    }
}

impl std::error::Error for PrefixError {}

/// A history: a downward-closed set of events of one computation.
///
/// The invariant (all temporal predecessors of a member are members) is
/// maintained by every constructor and mutator.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{ComputationBuilder, History, Structure};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let el = s.add_element("P", &[act])?;
/// let mut b = ComputationBuilder::new(s);
/// let e1 = b.add_event(el, act, vec![])?;
/// let e2 = b.add_event(el, act, vec![])?;
/// let c = b.seal()?;
/// let mut h = History::empty(&c);
/// h.try_insert(&c, e1)?;
/// assert!(h.try_insert(&c, e2).is_ok());
/// assert!(h.contains(e2));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct History {
    set: DenseBitSet,
}

impl History {
    /// The empty history of `computation`.
    pub fn empty(computation: &Computation) -> Self {
        Self {
            set: DenseBitSet::new(computation.event_count()),
        }
    }

    /// The complete history: every event of `computation`.
    pub fn full(computation: &Computation) -> Self {
        Self {
            set: DenseBitSet::full(computation.event_count()),
        }
    }

    /// Builds a history from an explicit set of events, verifying downward
    /// closure.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] naming an event whose temporal predecessor
    /// is missing.
    pub fn from_events(
        computation: &Computation,
        events: impl IntoIterator<Item = EventId>,
    ) -> Result<Self, PrefixError> {
        let mut set = DenseBitSet::new(computation.event_count());
        for e in events {
            set.insert(e.index());
        }
        for e in set.clone().iter() {
            let e = EventId::from_raw(e as u32);
            for p in computation.closure().predecessors(e).iter() {
                if !set.contains(p) {
                    return Err(PrefixError {
                        event: e,
                        missing: EventId::from_raw(p as u32),
                    });
                }
            }
        }
        Ok(Self { set })
    }

    /// Builds the smallest history containing `events`: the downward
    /// closure under the temporal order.
    pub fn downward_closure(
        computation: &Computation,
        events: impl IntoIterator<Item = EventId>,
    ) -> Self {
        let mut set = DenseBitSet::new(computation.event_count());
        for e in events {
            set.insert(e.index());
            set.union_with(computation.closure().predecessors(e));
        }
        Self { set }
    }

    /// True if `event` has occurred in this history.
    pub fn contains(&self, event: EventId) -> bool {
        self.set.contains(event.index())
    }

    /// Number of events that have occurred.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing has occurred yet.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over the occurred events in id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.set.iter().map(|i| EventId::from_raw(i as u32))
    }

    /// The prefix relation `self ⊑ other`.
    pub fn is_prefix_of(&self, other: &History) -> bool {
        self.set.is_subset(&other.set)
    }

    /// Adds `event`, verifying all its temporal predecessors are present.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] if a predecessor is missing; the history is
    /// unchanged in that case.
    pub fn try_insert(
        &mut self,
        computation: &Computation,
        event: EventId,
    ) -> Result<(), PrefixError> {
        for p in computation.closure().predecessors(event).iter() {
            if !self.set.contains(p) {
                return Err(PrefixError {
                    event,
                    missing: EventId::from_raw(p as u32),
                });
            }
        }
        self.set.insert(event.index());
        Ok(())
    }

    /// Events not yet occurred whose temporal predecessors have all
    /// occurred — the events that may extend this history.
    pub fn frontier(&self, computation: &Computation) -> Vec<EventId> {
        computation
            .event_ids()
            .filter(|&e| {
                !self.contains(e)
                    && computation
                        .closure()
                        .predecessors(e)
                        .iter()
                        .all(|p| self.set.contains(p))
            })
            .collect()
    }

    /// True if this history contains every event of the computation.
    pub fn is_complete(&self, computation: &Computation) -> bool {
        self.len() == computation.event_count()
    }

    /// The underlying bit set (for hashing / state keys).
    pub fn as_bitset(&self) -> &DenseBitSet {
        &self.set
    }

    /// The events in `other` but not in `self` (`other − self`).
    pub fn new_events_in(&self, other: &History) -> Vec<EventId> {
        other
            .set
            .iter()
            .filter(|&i| !self.set.contains(i))
            .map(|i| EventId::from_raw(i as u32))
            .collect()
    }

    /// The join (least upper bound) of two histories under the prefix
    /// order: their union. Histories of a computation form a lattice —
    /// downward-closed sets are closed under union and intersection — so
    /// the result is again a history.
    pub fn join(&self, other: &History) -> History {
        let mut set = self.set.clone();
        set.union_with(&other.set);
        History { set }
    }

    /// The meet (greatest lower bound) of two histories under the prefix
    /// order: their intersection.
    pub fn meet(&self, other: &History) -> History {
        let mut set = self.set.clone();
        set.intersect_with(&other.set);
        History { set }
    }
}

/// Error when a sequence of histories is not a valid history sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VhsError {
    /// A history in the sequence is not downward-closed.
    NotAHistory(PrefixError),
    /// `histories[index]` is not a prefix of `histories[index + 1]`.
    NotMonotone {
        /// Index of the first offending history.
        index: usize,
    },
    /// Two events first occurring in the same step are temporally ordered.
    OrderedStep {
        /// Index of the history introducing both events.
        index: usize,
        /// The earlier event.
        first: EventId,
        /// The later event (ordered after `first`, so they cannot be
        /// simultaneous).
        second: EventId,
    },
}

impl fmt::Display for VhsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VhsError::NotAHistory(p) => write!(f, "{p}"),
            VhsError::NotMonotone { index } => {
                write!(
                    f,
                    "history {index} is not a prefix of history {}",
                    index + 1
                )
            }
            VhsError::OrderedStep {
                index,
                first,
                second,
            } => write!(
                f,
                "history {index} introduces ordered events {first} and {second} simultaneously"
            ),
        }
    }
}

impl std::error::Error for VhsError {}

/// A valid history sequence (§7): monotone, with simultaneous steps of
/// pairwise-concurrent events.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistorySequence {
    histories: Vec<History>,
}

impl HistorySequence {
    /// Validates and wraps a sequence of histories.
    ///
    /// # Errors
    ///
    /// Returns a [`VhsError`] describing the first violated vhs condition.
    pub fn new(computation: &Computation, histories: Vec<History>) -> Result<Self, VhsError> {
        for h in &histories {
            History::from_events(computation, h.iter()).map_err(VhsError::NotAHistory)?;
        }
        for (i, pair) in histories.windows(2).enumerate() {
            if !pair[0].is_prefix_of(&pair[1]) {
                return Err(VhsError::NotMonotone { index: i });
            }
            let added = pair[0].new_events_in(&pair[1]);
            for (k, &a) in added.iter().enumerate() {
                for &b in &added[k + 1..] {
                    if computation.temporally_precedes(a, b) {
                        return Err(VhsError::OrderedStep {
                            index: i + 1,
                            first: a,
                            second: b,
                        });
                    }
                    if computation.temporally_precedes(b, a) {
                        return Err(VhsError::OrderedStep {
                            index: i + 1,
                            first: b,
                            second: a,
                        });
                    }
                }
            }
        }
        Ok(Self { histories })
    }

    /// The vhs obtained by adding one event at a time in the order of
    /// `linearization` (which must be a topological order).
    ///
    /// The sequence starts with the empty history, so it has
    /// `linearization.len() + 1` entries.
    ///
    /// # Panics
    ///
    /// Panics if `linearization` is not a valid topological order of the
    /// computation (an event appears before one of its predecessors).
    pub fn from_linearization(computation: &Computation, linearization: &[EventId]) -> Self {
        let mut histories = Vec::with_capacity(linearization.len() + 1);
        let mut h = History::empty(computation);
        histories.push(h.clone());
        for &e in linearization {
            h.try_insert(computation, e)
                .expect("linearization must respect the temporal order");
            histories.push(h.clone());
        }
        gem_obs::ambient::add("core.history.prefixes", histories.len() as u64);
        Self { histories }
    }

    /// The *greedy-step* vhs: each step adds the entire frontier at once
    /// (all newly-enabled events occur "at the same time"). This is the
    /// shortest vhs ending in the complete history.
    pub fn greedy_steps(computation: &Computation) -> Self {
        let mut histories = Vec::new();
        let mut h = History::empty(computation);
        histories.push(h.clone());
        loop {
            let frontier = h.frontier(computation);
            if frontier.is_empty() {
                break;
            }
            for e in frontier {
                h.try_insert(computation, e)
                    .expect("frontier events are insertable");
            }
            histories.push(h.clone());
        }
        gem_obs::ambient::add("core.history.prefixes", histories.len() as u64);
        Self { histories }
    }

    /// The histories, in order.
    pub fn histories(&self) -> &[History] {
        &self.histories
    }

    /// Number of histories in the sequence.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// True if the sequence has no histories.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// The first history (`α₀`), if any.
    pub fn first(&self) -> Option<&History> {
        self.histories.first()
    }

    /// The last history, if any.
    pub fn last(&self) -> Option<&History> {
        self.histories.last()
    }

    /// The tail `S[i] = αᵢ, αᵢ₊₁, …` as a borrowed slice. Tail closure (§7)
    /// guarantees every tail of a vhs is itself a vhs.
    pub fn tail(&self, i: usize) -> &[History] {
        &self.histories[i..]
    }
}

/// Visits every history (order ideal) of `computation` exactly once, in an
/// order where each history is visited after some of its prefixes.
///
/// Enumeration is depth-first over the canonical ideal tree (branching on
/// the inclusion/exclusion of the least frontier event), so no
/// deduplication set is needed. Returns the number of histories visited.
/// The visitor may stop enumeration early by returning
/// [`ControlFlow::Break`]; `limit` bounds the number of visits
/// (`usize::MAX` for unbounded).
pub fn for_each_history(
    computation: &Computation,
    limit: usize,
    mut visit: impl FnMut(&History) -> ControlFlow<()>,
) -> usize {
    fn rec(
        computation: &Computation,
        current: &mut History,
        excluded: &mut DenseBitSet,
        visited: &mut usize,
        limit: usize,
        visit: &mut impl FnMut(&History) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if *visited >= limit {
            return ControlFlow::Break(());
        }
        *visited += 1;
        visit(current)?;
        let frontier: Vec<EventId> = current
            .frontier(computation)
            .into_iter()
            .filter(|e| !excluded.contains(e.index()))
            .collect();
        let mut newly_excluded = Vec::new();
        for &e in &frontier {
            current
                .try_insert(computation, e)
                .expect("frontier event is insertable");
            let flow = rec(computation, current, excluded, visited, limit, visit);
            current.set.remove(e.index());
            if flow.is_break() {
                for &x in &newly_excluded {
                    excluded.remove(x);
                }
                return ControlFlow::Break(());
            }
            excluded.insert(e.index());
            newly_excluded.push(e.index());
        }
        for &x in &newly_excluded {
            excluded.remove(x);
        }
        ControlFlow::Continue(())
    }

    let mut visited = 0;
    let mut current = History::empty(computation);
    let mut excluded = DenseBitSet::new(computation.event_count());
    let _ = rec(
        computation,
        &mut current,
        &mut excluded,
        &mut visited,
        limit,
        &mut visit,
    );
    gem_obs::ambient::add("core.history.histories_enumerated", visited as u64);
    visited
}

/// Visits every linearization (topological order / total interleaving) of
/// the computation. Returns the number visited; `limit` bounds it.
///
/// Each visit receives the full order of all events. The visitor may stop
/// enumeration early by returning [`ControlFlow::Break`].
pub fn for_each_linearization(
    computation: &Computation,
    limit: usize,
    mut visit: impl FnMut(&[EventId]) -> ControlFlow<()>,
) -> usize {
    fn rec(
        computation: &Computation,
        current: &mut History,
        order: &mut Vec<EventId>,
        visited: &mut usize,
        limit: usize,
        visit: &mut impl FnMut(&[EventId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if order.len() == computation.event_count() {
            if *visited >= limit {
                return ControlFlow::Break(());
            }
            *visited += 1;
            return visit(order);
        }
        for e in current.frontier(computation) {
            current
                .try_insert(computation, e)
                .expect("frontier event is insertable");
            order.push(e);
            let flow = rec(computation, current, order, visited, limit, visit);
            order.pop();
            current.set.remove(e.index());
            flow?;
        }
        ControlFlow::Continue(())
    }

    let mut visited = 0;
    let mut current = History::empty(computation);
    let mut order = Vec::new();
    let _ = rec(
        computation,
        &mut current,
        &mut order,
        &mut visited,
        limit,
        &mut visit,
    );
    gem_obs::ambient::add("core.history.linearizations", visited as u64);
    visited
}

/// Visits every *maximal valid history sequence* of the computation whose
/// steps are arbitrary non-empty antichains of the frontier — i.e. every
/// way the computation can unfold when any set of pairwise-concurrent
/// enabled events may occur "at the same time" (§7).
///
/// This is the fully general vhs semantics; the number of sequences grows
/// doubly exponentially, so `limit` bounds the number of complete
/// sequences visited. Every sequence starts with the empty history and
/// ends with the complete history. Returns the number visited.
pub fn for_each_step_sequence(
    computation: &Computation,
    limit: usize,
    mut visit: impl FnMut(&[History]) -> ControlFlow<()>,
) -> usize {
    fn antichain_subsets(
        computation: &Computation,
        frontier: &[EventId],
        pick: &mut Vec<EventId>,
        start: usize,
        out: &mut Vec<Vec<EventId>>,
    ) {
        if !pick.is_empty() {
            out.push(pick.clone());
        }
        for i in start..frontier.len() {
            let e = frontier[i];
            // Frontier events are pairwise unordered only if concurrent;
            // same-element frontier events cannot coexist in a step.
            if pick.iter().all(|&p| computation.concurrent(p, e)) {
                pick.push(e);
                antichain_subsets(computation, frontier, pick, i + 1, out);
                pick.pop();
            }
        }
    }

    fn rec(
        computation: &Computation,
        seq: &mut Vec<History>,
        visited: &mut usize,
        limit: usize,
        visit: &mut impl FnMut(&[History]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let current = seq.last().expect("sequence starts non-empty").clone();
        let frontier = current.frontier(computation);
        if frontier.is_empty() {
            if *visited >= limit {
                return ControlFlow::Break(());
            }
            *visited += 1;
            return visit(seq);
        }
        let mut steps = Vec::new();
        antichain_subsets(computation, &frontier, &mut Vec::new(), 0, &mut steps);
        for step in steps {
            let mut next = current.clone();
            for e in step {
                next.try_insert(computation, e)
                    .expect("antichain of frontier events is insertable");
            }
            seq.push(next);
            let flow = rec(computation, seq, visited, limit, visit);
            seq.pop();
            flow?;
        }
        ControlFlow::Continue(())
    }

    let mut visited = 0;
    let mut seq = vec![History::empty(computation)];
    let _ = rec(computation, &mut seq, &mut visited, limit, &mut visit);
    visited
}

/// Counts the histories of a computation (up to `limit`).
pub fn history_count(computation: &Computation, limit: usize) -> usize {
    for_each_history(computation, limit, |_| ControlFlow::Continue(()))
}

/// Counts the linearizations of a computation (up to `limit`).
pub fn linearization_count(computation: &Computation, limit: usize) -> usize {
    for_each_linearization(computation, limit, |_| ControlFlow::Continue(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputationBuilder, Structure};

    /// The §7 example: e1 ⊳ e2, e1 ⊳ e3, {e2, e3} ⊳ e4 at four distinct
    /// elements.
    fn diamond() -> (Computation, Vec<EventId>) {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let els: Vec<_> = (0..4)
            .map(|i| s.add_element(format!("P{i}"), &[act]).unwrap())
            .collect();
        let mut b = ComputationBuilder::new(s);
        let e: Vec<_> = els
            .iter()
            .map(|&el| b.add_event(el, act, vec![]).unwrap())
            .collect();
        b.enable(e[0], e[1]).unwrap();
        b.enable(e[0], e[2]).unwrap();
        b.enable(e[1], e[3]).unwrap();
        b.enable(e[2], e[3]).unwrap();
        (b.seal().unwrap(), e)
    }

    #[test]
    fn section7_history_count() {
        // §7 lists the histories: {}, {e1}, {e1,e2}, {e1,e3}, {e1,e2,e3},
        // {e1,e2,e3,e4} — six including the empty history.
        let (c, _) = diamond();
        assert_eq!(history_count(&c, usize::MAX), 6);
    }

    #[test]
    fn section7_linearizations() {
        let (c, _) = diamond();
        // e1 (e2 e3 | e3 e2) e4 — two linearizations.
        assert_eq!(linearization_count(&c, usize::MAX), 2);
    }

    #[test]
    fn prefix_invariant_enforced() {
        let (c, e) = diamond();
        assert!(History::from_events(&c, [e[1]]).is_err());
        assert!(History::from_events(&c, [e[0], e[1]]).is_ok());
        let mut h = History::empty(&c);
        let err = h.try_insert(&c, e[3]).unwrap_err();
        assert_eq!(err.event, e[3]);
        assert!(h.is_empty(), "failed insert leaves history unchanged");
    }

    #[test]
    fn downward_closure_builds_prefix() {
        let (c, e) = diamond();
        let h = History::downward_closure(&c, [e[3]]);
        assert_eq!(h.len(), 4);
        assert!(h.is_complete(&c));
        let h2 = History::downward_closure(&c, [e[1]]);
        assert_eq!(h2.iter().collect::<Vec<_>>(), vec![e[0], e[1]]);
    }

    #[test]
    fn frontier_tracks_enabled_events() {
        let (c, e) = diamond();
        let mut h = History::empty(&c);
        assert_eq!(h.frontier(&c), vec![e[0]]);
        h.try_insert(&c, e[0]).unwrap();
        assert_eq!(h.frontier(&c), vec![e[1], e[2]]);
        h.try_insert(&c, e[1]).unwrap();
        h.try_insert(&c, e[2]).unwrap();
        assert_eq!(h.frontier(&c), vec![e[3]]);
        h.try_insert(&c, e[3]).unwrap();
        assert!(h.frontier(&c).is_empty());
    }

    #[test]
    fn vhs_simultaneous_step_requires_concurrency() {
        let (c, e) = diamond();
        // α0 = {e1}, α3 = {e1, e2, e3}: e2 and e3 occur "at the same time".
        let a0 = History::from_events(&c, [e[0]]).unwrap();
        let a3 = History::from_events(&c, [e[0], e[1], e[2]]).unwrap();
        let a4 = History::full(&c);
        assert!(HistorySequence::new(&c, vec![a0.clone(), a3.clone(), a4.clone()]).is_ok());
        // But a step adding e1 and e2 together is invalid: e1 ⇒ e2.
        let bad = History::from_events(&c, [e[0], e[1]]).unwrap();
        let err = HistorySequence::new(&c, vec![History::empty(&c), bad]).unwrap_err();
        assert!(matches!(err, VhsError::OrderedStep { .. }));
    }

    #[test]
    fn vhs_monotonicity_required() {
        let (c, e) = diamond();
        let a1 = History::from_events(&c, [e[0], e[1]]).unwrap();
        let a2 = History::from_events(&c, [e[0], e[2]]).unwrap();
        let err = HistorySequence::new(&c, vec![a1, a2]).unwrap_err();
        assert!(matches!(err, VhsError::NotMonotone { index: 0 }));
    }

    #[test]
    fn vhs_from_linearization() {
        let (c, e) = diamond();
        let s = HistorySequence::from_linearization(&c, &[e[0], e[2], e[1], e[3]]);
        assert_eq!(s.len(), 5);
        assert!(s.first().unwrap().is_empty());
        assert!(s.last().unwrap().is_complete(&c));
        // Stuttering-free single-event steps are always valid.
        assert!(HistorySequence::new(&c, s.histories().to_vec()).is_ok());
    }

    #[test]
    fn greedy_steps_is_shortest_complete_vhs() {
        let (c, _) = diamond();
        let s = HistorySequence::greedy_steps(&c);
        // {}, {e1}, {e1,e2,e3}, all — 4 histories.
        assert_eq!(s.len(), 4);
        assert!(s.last().unwrap().is_complete(&c));
        assert!(HistorySequence::new(&c, s.histories().to_vec()).is_ok());
    }

    #[test]
    fn tail_closure() {
        let (c, e) = diamond();
        let s = HistorySequence::from_linearization(&c, &[e[0], e[1], e[2], e[3]]);
        for i in 0..s.len() {
            let tail = s.tail(i).to_vec();
            assert!(
                HistorySequence::new(&c, tail).is_ok(),
                "tail {i} must be a vhs"
            );
        }
    }

    #[test]
    fn enumeration_limit_respected() {
        let (c, _) = diamond();
        assert_eq!(history_count(&c, 3), 3);
        assert_eq!(linearization_count(&c, 1), 1);
    }

    #[test]
    fn history_enumeration_unique() {
        let (c, _) = diamond();
        let mut seen = std::collections::HashSet::new();
        for_each_history(&c, usize::MAX, |h| {
            assert!(seen.insert(h.as_bitset().clone()), "duplicate history");
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn linearizations_of_antichain() {
        // n independent events: n! linearizations, 2^n histories.
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let els: Vec<_> = (0..4)
            .map(|i| s.add_element(format!("Q{i}"), &[act]).unwrap())
            .collect();
        let mut b = ComputationBuilder::new(s);
        for &el in &els {
            b.add_event(el, act, vec![]).unwrap();
        }
        let c = b.seal().unwrap();
        assert_eq!(linearization_count(&c, usize::MAX), 24);
        assert_eq!(history_count(&c, usize::MAX), 16);
    }

    #[test]
    fn step_sequences_of_diamond() {
        let (c, _) = diamond();
        // Unfoldings: e1; then {e2},{e3} in either order or {e2,e3} at once;
        // then e4. That is 3 maximal step sequences.
        let mut count = 0;
        let n = for_each_step_sequence(&c, usize::MAX, |seq| {
            count += 1;
            assert!(seq.first().unwrap().is_empty());
            assert!(seq.last().unwrap().is_complete(&c));
            // Every produced sequence is a valid history sequence.
            assert!(HistorySequence::new(&c, seq.to_vec()).is_ok());
            ControlFlow::Continue(())
        });
        assert_eq!(n, 3);
        assert_eq!(count, 3);
    }

    #[test]
    fn step_sequences_exclude_ordered_steps() {
        // Two events at the SAME element are never simultaneous.
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let el = s.add_element("P", &[act]).unwrap();
        let mut b = ComputationBuilder::new(s);
        b.add_event(el, act, vec![]).unwrap();
        b.add_event(el, act, vec![]).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(
            for_each_step_sequence(&c, usize::MAX, |_| ControlFlow::Continue(())),
            1
        );
    }

    #[test]
    fn step_sequences_limit() {
        let (c, _) = diamond();
        assert_eq!(
            for_each_step_sequence(&c, 2, |_| ControlFlow::Continue(())),
            2
        );
    }

    #[test]
    fn new_events_in_difference() {
        let (c, e) = diamond();
        let a = History::from_events(&c, [e[0]]).unwrap();
        let b = History::from_events(&c, [e[0], e[1], e[2]]).unwrap();
        assert_eq!(a.new_events_in(&b), vec![e[1], e[2]]);
        assert!(b.new_events_in(&a).is_empty());
    }
}
