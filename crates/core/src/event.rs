//! Events: the atomic occurrences of a GEM computation (§4).
//!
//! An event is a unique occurrence with identity, an owning element, an
//! event class, data parameters, and thread tags. Because all events at an
//! element are totally ordered, an event is uniquely named by its element
//! and occurrence number (`Var.assign_i`, or simply `Var^i`); the
//! [`Event::seq`] accessor exposes that occurrence number.

use crate::{ClassId, ElementId, EventId, ThreadTag, ThreadTypeId, Value};

/// A single event occurrence.
///
/// Events are created through
/// [`ComputationBuilder`](crate::ComputationBuilder) and owned by their
/// [`Computation`](crate::Computation); this type is a read-only record.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub(crate) id: EventId,
    pub(crate) element: ElementId,
    pub(crate) class: ClassId,
    pub(crate) seq: u32,
    pub(crate) params: Vec<Value>,
    pub(crate) threads: Vec<ThreadTag>,
}

impl Event {
    /// The event's identity within its computation.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The element at which this event occurs (`e @ EL`).
    pub fn element(&self) -> ElementId {
        self.element
    }

    /// The event class this event belongs to.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The occurrence number at its element (0-based): this event is the
    /// `seq`-th event at [`Event::element`] in the element order.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// The data parameters, positionally matching the class declaration.
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// The `index`-th data parameter, if present.
    pub fn param(&self, index: usize) -> Option<&Value> {
        self.params.get(index)
    }

    /// The thread tags this event carries (§8.3).
    pub fn threads(&self) -> &[ThreadTag] {
        &self.threads
    }

    /// True if this event belongs to thread instance `tag`.
    pub fn in_thread(&self, tag: ThreadTag) -> bool {
        self.threads.contains(&tag)
    }

    /// The instance tag of thread type `ty` on this event, if any.
    pub fn thread_of_type(&self, ty: ThreadTypeId) -> Option<ThreadTag> {
        self.threads.iter().copied().find(|t| t.thread_type() == ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            id: EventId::from_raw(5),
            element: ElementId::from_raw(1),
            class: ClassId::from_raw(2),
            seq: 3,
            params: vec![Value::Int(7), Value::from("x")],
            threads: vec![ThreadTag::new(ThreadTypeId::from_raw(0), 2)],
        }
    }

    #[test]
    fn accessors() {
        let e = sample();
        assert_eq!(e.id(), EventId::from_raw(5));
        assert_eq!(e.element(), ElementId::from_raw(1));
        assert_eq!(e.class(), ClassId::from_raw(2));
        assert_eq!(e.seq(), 3);
        assert_eq!(e.param(0), Some(&Value::Int(7)));
        assert_eq!(e.param(2), None);
        assert_eq!(e.params().len(), 2);
    }

    #[test]
    fn thread_queries() {
        let e = sample();
        let tag = ThreadTag::new(ThreadTypeId::from_raw(0), 2);
        let other = ThreadTag::new(ThreadTypeId::from_raw(0), 3);
        assert!(e.in_thread(tag));
        assert!(!e.in_thread(other));
        assert_eq!(e.thread_of_type(ThreadTypeId::from_raw(0)), Some(tag));
        assert_eq!(e.thread_of_type(ThreadTypeId::from_raw(1)), None);
    }
}
