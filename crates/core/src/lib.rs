//! # gem-core — the GEM model of concurrent execution
//!
//! Core data model for the GEM (Group Element Model) reproduction, after
//! Lansky & Owicki, *GEM: A Tool for Concurrency Specification and
//! Verification* (1983).
//!
//! A GEM **computation** represents one concurrent execution as a set of
//! **events** related by:
//!
//! * the **enable relation** `e1 ⊳ e2` — control passing between actions
//!   (partial, irreflexive, not transitive);
//! * the **element order** `e1 ⇒ₑ e2` — forced sequential order among the
//!   events of one **element** (a locus of activity such as a variable or a
//!   message port);
//! * the **temporal order** `e1 ⇒ e2` — the transitive closure of the two,
//!   minus identity; the only *observable* order in a distributed
//!   execution. Events unordered by `⇒` are *potentially concurrent*.
//!
//! Elements cluster into **groups**, which model scope: enable edges may
//! not cross a group boundary except through designated **port** events.
//! A **history** is a downward-closed prefix of a computation ("what has
//! happened so far"), and a **valid history sequence** is a monotone chain
//! of histories along which temporal restrictions (`◻`, `◇`) are
//! interpreted.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gem_core::{check_legality, ComputationBuilder, Structure, Value};
//!
//! // Declare the structure: an integer variable element (the §4 example).
//! let mut s = Structure::new();
//! let assign = s.add_class("Assign", &["newval"])?;
//! let getval = s.add_class("Getval", &["oldval"])?;
//! let var = s.add_element("Var", &[assign, getval])?;
//!
//! // Build a computation: two accesses to Var, sequential by element order.
//! let mut b = ComputationBuilder::new(s);
//! let a = b.add_event(var, assign, vec![Value::Int(42)])?;
//! let g = b.add_event(var, getval, vec![Value::Int(42)])?;
//! let c = b.seal()?;
//!
//! assert!(c.temporally_precedes(a, g));
//! assert!(check_legality(&c).is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! Higher layers build on this crate: `gem-logic` evaluates restriction
//! formulae over computations and histories, `gem-spec` provides type
//! descriptions and threads, `gem-lang` generates computations from
//! Monitor/CSP/ADA programs, and `gem-verify` implements the paper's
//! verification methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod computation;
mod dot;
mod event;
mod history;
mod ids;
mod legality;
mod order;
mod structure;
mod value;

pub use bitset::{DenseBitSet, Iter as BitSetIter};
pub use computation::{BuildError, BuilderMark, Computation, ComputationBuilder, Membership};
pub use dot::{to_dot, to_dot_with, DotOptions};
pub use event::Event;
pub use history::{
    for_each_history, for_each_linearization, for_each_step_sequence, history_count,
    linearization_count, History, HistorySequence, PrefixError, VhsError,
};
pub use ids::{ClassId, ElementId, EventId, GroupId, ThreadTag, ThreadTypeId};
pub use legality::{check_legality, is_legal, Violation};
pub use order::{Closure, CycleError, DfsReachability, IncrementalOrder};
pub use structure::{ClassInfo, ElementInfo, GroupInfo, NodeRef, Structure, StructureError};
pub use value::Value;
