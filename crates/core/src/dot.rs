//! Graphviz export of computations, for inspecting event structures and
//! counterexamples.

use std::fmt::Write as _;

use crate::Computation;

/// Renders `computation` in Graphviz `dot` syntax.
///
/// Events are nodes labelled `Element.Class^seq`; solid edges are enable
/// edges (`⊳`), dashed edges are consecutive element-order steps. Elements
/// are clustered, so the forced-sequential loci are visually grouped.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{to_dot, ComputationBuilder, Structure};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let el = s.add_element("P", &[act])?;
/// let mut b = ComputationBuilder::new(s);
/// b.add_event(el, act, vec![])?;
/// let dot = to_dot(&b.seal()?);
/// assert!(dot.starts_with("digraph gem"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(computation: &Computation) -> String {
    let s = computation.structure();
    let mut out = String::from("digraph gem {\n  rankdir=TB;\n  node [shape=box];\n");
    for el in s.elements() {
        let events = computation.events_at(el);
        if events.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_{} {{", el.index());
        let _ = writeln!(out, "    label={:?};", s.element_info(el).name());
        for &e in events {
            let ev = computation.event(e);
            let _ = writeln!(
                out,
                "    {} [label=\"{}.{}^{}\"];",
                e.index(),
                s.element_info(el).name(),
                s.class_info(ev.class()).name(),
                ev.seq()
            );
        }
        for pair in events.windows(2) {
            let _ = writeln!(
                out,
                "    {} -> {} [style=dashed];",
                pair[0].index(),
                pair[1].index()
            );
        }
        out.push_str("  }\n");
    }
    for (a, b) in computation.enable_edges() {
        let _ = writeln!(out, "  {} -> {};", a.index(), b.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputationBuilder, Structure};

    #[test]
    fn dot_contains_events_and_edges() {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let p = s.add_element("P", &[a]).unwrap();
        let q = s.add_element("Q", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, a, vec![]).unwrap();
        let _e2 = b.add_event(p, a, vec![]).unwrap();
        let e3 = b.add_event(q, a, vec![]).unwrap();
        b.enable(e1, e3).unwrap();
        let c = b.seal().unwrap();
        let dot = to_dot(&c);
        assert!(dot.contains("P.A^0"));
        assert!(dot.contains("P.A^1"));
        assert!(dot.contains("Q.A^0"));
        assert!(dot.contains("0 -> 2;"), "enable edge rendered: {dot}");
        assert!(
            dot.contains("0 -> 1 [style=dashed];"),
            "element edge: {dot}"
        );
        assert!(dot.contains("cluster_0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_elements_omitted() {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        s.add_element("Empty", &[a]).unwrap();
        let c = crate::Computation::empty(s);
        let dot = to_dot(&c);
        assert!(!dot.contains("cluster_0"));
    }
}
