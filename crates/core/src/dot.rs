//! Graphviz export of computations, for inspecting event structures and
//! counterexamples.

use std::fmt::Write as _;

use crate::{Computation, EventId};

/// Rendering options for [`to_dot_with`].
///
/// The defaults reproduce [`to_dot`]: every event, no emphasis.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Events to emphasize (filled red, thick border) — typically the
    /// witness events blamed for a restriction failure, or the stuck
    /// frontier of a deadlock.
    pub highlight: Vec<EventId>,
    /// Restrict the rendering to the *causal slice*: the highlighted
    /// events plus their temporal past (closure predecessors). Since
    /// histories are downward-closed, this is exactly the smallest
    /// history containing the blamed events — the prefix of the valid
    /// history sequence that suffices to replay the violation.
    pub slice: bool,
}

/// Renders `computation` in Graphviz `dot` syntax.
///
/// Events are nodes labelled `Element.Class^seq`; solid edges are enable
/// edges (`⊳`), dashed edges are consecutive element-order steps. Elements
/// are clustered, so the forced-sequential loci are visually grouped.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{to_dot, ComputationBuilder, Structure};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let el = s.add_element("P", &[act])?;
/// let mut b = ComputationBuilder::new(s);
/// b.add_event(el, act, vec![])?;
/// let dot = to_dot(&b.seal()?);
/// assert!(dot.starts_with("digraph gem"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(computation: &Computation) -> String {
    to_dot_with(computation, &DotOptions::default())
}

/// [`to_dot`] with blamed-event highlighting and an optional causal
/// slice view (see [`DotOptions`]).
pub fn to_dot_with(computation: &Computation, options: &DotOptions) -> String {
    let s = computation.structure();
    // The set of events rendered: everything, or the past cone of the
    // highlighted events when slicing.
    let included: Option<Vec<bool>> = if options.slice && !options.highlight.is_empty() {
        let mut keep = vec![false; computation.event_count()];
        for &e in &options.highlight {
            keep[e.index()] = true;
            for p in computation.closure().predecessors(e).iter() {
                keep[p] = true;
            }
        }
        Some(keep)
    } else {
        None
    };
    let keeps = |e: EventId| included.as_ref().is_none_or(|k| k[e.index()]);
    let highlighted = |e: EventId| options.highlight.contains(&e);

    let mut out = String::from("digraph gem {\n  rankdir=TB;\n  node [shape=box];\n");
    if included.is_some() {
        out.push_str("  label=\"causal slice (past cone of blamed events)\";\n");
    }
    for el in s.elements() {
        let events: Vec<EventId> = computation
            .events_at(el)
            .iter()
            .copied()
            .filter(|&e| keeps(e))
            .collect();
        if events.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_{} {{", el.index());
        let _ = writeln!(out, "    label={:?};", s.element_info(el).name());
        for &e in &events {
            let attrs = if highlighted(e) {
                " style=filled fillcolor=\"#ffd6d6\" color=\"#aa0000\" penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {} [label=\"{}\"{attrs}];",
                e.index(),
                computation.event_label(e),
            );
        }
        for pair in events.windows(2) {
            let _ = writeln!(
                out,
                "    {} -> {} [style=dashed];",
                pair[0].index(),
                pair[1].index()
            );
        }
        out.push_str("  }\n");
    }
    for (a, b) in computation.enable_edges() {
        if keeps(a) && keeps(b) {
            let _ = writeln!(out, "  {} -> {};", a.index(), b.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputationBuilder, Structure};

    fn diamond() -> (Computation, Vec<EventId>) {
        // P: p0 -> p1 (element order), Q: q0, R: r0; p0 ⊳ q0, q0 ⊳ r0,
        // p1 outside r0's past.
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let p = s.add_element("P", &[a]).unwrap();
        let q = s.add_element("Q", &[a]).unwrap();
        let r = s.add_element("R", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let p0 = b.add_event(p, a, vec![]).unwrap();
        let p1 = b.add_event(p, a, vec![]).unwrap();
        let q0 = b.add_event(q, a, vec![]).unwrap();
        let r0 = b.add_event(r, a, vec![]).unwrap();
        b.enable(p0, q0).unwrap();
        b.enable(q0, r0).unwrap();
        (b.seal().unwrap(), vec![p0, p1, q0, r0])
    }

    #[test]
    fn dot_contains_events_and_edges() {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let p = s.add_element("P", &[a]).unwrap();
        let q = s.add_element("Q", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, a, vec![]).unwrap();
        let _e2 = b.add_event(p, a, vec![]).unwrap();
        let e3 = b.add_event(q, a, vec![]).unwrap();
        b.enable(e1, e3).unwrap();
        let c = b.seal().unwrap();
        let dot = to_dot(&c);
        assert!(dot.contains("P.A^0"));
        assert!(dot.contains("P.A^1"));
        assert!(dot.contains("Q.A^0"));
        assert!(dot.contains("0 -> 2;"), "enable edge rendered: {dot}");
        assert!(
            dot.contains("0 -> 1 [style=dashed];"),
            "element edge: {dot}"
        );
        assert!(dot.contains("cluster_0"));
        assert!(dot.ends_with("}\n"));
        assert!(!dot.contains("fillcolor"), "no highlight by default");
    }

    #[test]
    fn empty_elements_omitted() {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        s.add_element("Empty", &[a]).unwrap();
        let c = crate::Computation::empty(s);
        let dot = to_dot(&c);
        assert!(!dot.contains("cluster_0"));
    }

    #[test]
    fn highlight_marks_only_chosen_events() {
        let (c, ids) = diamond();
        let dot = to_dot_with(
            &c,
            &DotOptions {
                highlight: vec![ids[3]],
                slice: false,
            },
        );
        // All four events still rendered; exactly one filled.
        for label in ["P.A^0", "P.A^1", "Q.A^0", "R.A^0"] {
            assert!(dot.contains(label), "{dot}");
        }
        assert_eq!(dot.matches("fillcolor").count(), 1, "{dot}");
    }

    #[test]
    fn slice_restricts_to_past_cone() {
        let (c, ids) = diamond();
        let dot = to_dot_with(
            &c,
            &DotOptions {
                highlight: vec![ids[3]],
                slice: true,
            },
        );
        // r0's past cone is {p0, q0, r0}; p1 is causally unrelated.
        assert!(dot.contains("P.A^0"), "{dot}");
        assert!(dot.contains("Q.A^0"), "{dot}");
        assert!(dot.contains("R.A^0"), "{dot}");
        assert!(!dot.contains("P.A^1"), "sliced out: {dot}");
        assert!(dot.contains("causal slice"), "{dot}");
        // No dashed P edge survives (only one P event left).
        assert!(!dot.contains("0 -> 1 [style=dashed]"), "{dot}");
    }
}
