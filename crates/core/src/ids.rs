//! Typed identifiers for the objects of a GEM computation.
//!
//! Every object in a GEM structure — events, elements, groups, event
//! classes, thread types — is referred to through a small copyable id
//! newtype ([C-NEWTYPE]). Ids are indices into the owning
//! [`Structure`](crate::Structure) or [`Computation`](crate::Computation)
//! and are only meaningful relative to the object that issued them.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Normally ids are issued by a [`Structure`](crate::Structure)
            /// or builder; this constructor exists for tests and for
            /// deserialization-like workflows where indices are known.
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this id.
            pub const fn as_raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize`, for indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a single event occurrence within a computation.
    EventId,
    "e"
);
id_type!(
    /// Identifier of an element (a locus of forced sequential activity).
    ElementId,
    "EL"
);
id_type!(
    /// Identifier of a group (a semantic clustering of elements/groups).
    GroupId,
    "G"
);
id_type!(
    /// Identifier of an event class (a set of similar events, e.g. `Assign`).
    ClassId,
    "cls"
);
id_type!(
    /// Identifier of a thread *type* (a path-expression pattern, §8.3).
    ThreadTypeId,
    "pi"
);

/// A thread *instance* tag carried by an event: which thread type it belongs
/// to and which instance of that type (e.g. `pi_RW-3`).
///
/// The paper (§8.3) associates a fresh thread identifier with each chain of
/// enabled events matching a thread type's path expression; `ThreadTag` is
/// that identifier.
///
/// # Examples
///
/// ```
/// use gem_core::{ThreadTag, ThreadTypeId};
/// let tag = ThreadTag::new(ThreadTypeId::from_raw(0), 3);
/// assert_eq!(tag.instance(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadTag {
    ty: ThreadTypeId,
    instance: u32,
}

impl ThreadTag {
    /// Creates a tag for instance `instance` of thread type `ty`.
    pub const fn new(ty: ThreadTypeId, instance: u32) -> Self {
        Self { ty, instance }
    }

    /// The thread type this tag instantiates.
    pub const fn thread_type(self) -> ThreadTypeId {
        self.ty
    }

    /// The instance number, unique per thread type within a computation.
    pub const fn instance(self) -> u32 {
        self.instance
    }
}

impl fmt::Display for ThreadTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.ty, self.instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw() {
        let e = EventId::from_raw(7);
        assert_eq!(e.as_raw(), 7);
        assert_eq!(e.index(), 7);
        assert_eq!(u32::from(e), 7);
    }

    #[test]
    fn ids_display_with_tag() {
        assert_eq!(EventId::from_raw(3).to_string(), "e3");
        assert_eq!(ElementId::from_raw(0).to_string(), "EL0");
        assert_eq!(GroupId::from_raw(2).to_string(), "G2");
        assert_eq!(ClassId::from_raw(9).to_string(), "cls9");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(EventId::from_raw(1) < EventId::from_raw(2));
    }

    #[test]
    fn thread_tag_accessors() {
        let tag = ThreadTag::new(ThreadTypeId::from_raw(1), 4);
        assert_eq!(tag.thread_type(), ThreadTypeId::from_raw(1));
        assert_eq!(tag.instance(), 4);
        assert_eq!(tag.to_string(), "pi1-4");
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        #![allow(unused)]
        // Compile-time property: EventId and ElementId are distinct types.
        fn takes_event(_: EventId) {}
        takes_event(EventId::from_raw(0));
    }
}
