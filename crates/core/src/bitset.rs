//! A dense, fixed-capacity bit set used for order closures and histories.
//!
//! The temporal-order closure of a computation is a reachability matrix with
//! one [`DenseBitSet`] row per event, and a [`History`](crate::History) is a
//! downward-closed `DenseBitSet` of event ids. A small hand-rolled bit set
//! keeps `gem-core` dependency-free and lets us provide exactly the
//! operations those structures need (subset tests, union, iteration).

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of small integers backed by `u64` words.
///
/// The capacity is set at construction; all indices passed to methods must
/// be below it.
///
/// # Examples
///
/// ```
/// use gem_core::DenseBitSet;
/// let mut s = DenseBitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseBitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Wraps an existing word buffer as a set over `0..capacity`.
    ///
    /// The buffer must have exactly `capacity.div_ceil(64)` words and no
    /// bits set at or above `capacity`. Used by the incremental order to
    /// hand its rows to [`Closure`](crate::Closure) without re-copying.
    pub(crate) fn from_words(words: Vec<u64>, capacity: usize) -> Self {
        debug_assert_eq!(words.len(), capacity.div_ceil(WORD_BITS));
        debug_assert!(
            capacity.is_multiple_of(WORD_BITS)
                || words
                    .last()
                    .is_none_or(|w| w >> (capacity % WORD_BITS) == 0),
            "bits set beyond capacity"
        );
        Self { words, capacity }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut set = Self::new(capacity);
        for i in 0..capacity {
            set.insert(i);
        }
        set
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index` into the set. Returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "bit index {index} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `index` from the set. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "bit index {index} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// True if `index` is in the set.
    ///
    /// Out-of-capacity indices are reported as absent rather than panicking,
    /// so that queries against a smaller closure row are safe.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection: `self ← self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference: `self ← self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseBitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
            && self.words.len() <= other.words.len()
    }

    /// True if `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &DenseBitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the indices in the set, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Collects indices into a set sized to the largest index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = DenseBitSet::new(capacity);
        for i in indices {
            set.insert(i);
        }
        set
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over set indices produced by [`DenseBitSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports not-fresh");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert!(!s.contains(129));
    }

    #[test]
    fn len_and_empty() {
        let mut s = DenseBitSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.insert(1);
        s.insert(9);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn full_contains_everything() {
        let s = DenseBitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(0));
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let mut a: DenseBitSet = [1usize, 2, 3].into_iter().collect();
        let b: DenseBitSet = [3usize, 2].into_iter().collect();
        // resize to common capacity
        let mut a2 = DenseBitSet::new(4);
        a2.extend(a.iter());
        let mut b2 = DenseBitSet::new(4);
        b2.extend(b.iter());
        a = a2.clone();
        a.union_with(&b2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        a.intersect_with(&b2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
        a.difference_with(&b2);
        assert!(a.is_empty());
        assert!(b2.is_subset(&a2));
        assert!(!a2.is_subset(&b2));
        let c: DenseBitSet = DenseBitSet::new(4);
        assert!(c.is_disjoint(&a2));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let mut s = DenseBitSet::new(200);
        for i in [150, 3, 77, 64, 63] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63, 64, 77, 150]);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = DenseBitSet::new(5);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_capacity_insert_panics() {
        let mut s = DenseBitSet::new(5);
        s.insert(5);
    }

    #[test]
    fn debug_shows_contents() {
        let s: DenseBitSet = [1usize, 4].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 4}");
    }
}
