//! The temporal order `⇒`: transitive closure of the enable relation and
//! the element order, minus identity (§3, §5).
//!
//! A legal computation's temporal order must be a strict partial order, so
//! the union of enable edges and element-successor edges must be acyclic.
//! [`Closure`] materialises the order as a reachability matrix (one bitset
//! row per event for successors and one per event for predecessors), giving
//! O(1) `precedes`/`concurrent` queries and O(n/64) predecessor-set
//! retrieval — the operations history enumeration and restriction
//! evaluation perform constantly.
//!
//! An alternative on-demand DFS implementation ([`DfsReachability`]) is
//! provided for the closure-representation ablation (DESIGN.md §4,
//! bench `closure_scaling`).

use crate::{DenseBitSet, EventId};

/// Error returned when the union of enable and element order is cyclic,
/// i.e. the temporal order would not be irreflexive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleError {
    /// An event on the cycle.
    pub on_cycle: EventId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "temporal order is cyclic: event {} precedes itself",
            self.on_cycle
        )
    }
}

impl std::error::Error for CycleError {}

/// Materialised strict partial order over `n` events.
///
/// Built from a DAG of direct edges with [`Closure::from_edges`]; exposes
/// reachability both ways plus a topological order of the events.
#[derive(Clone, PartialEq, Debug)]
pub struct Closure {
    /// `succ[i]` = set of `j` with `i ⇒ j`.
    succ: Vec<DenseBitSet>,
    /// `pred[j]` = set of `i` with `i ⇒ j`.
    pred: Vec<DenseBitSet>,
    /// The events in some topological order of the direct-edge DAG.
    topo: Vec<EventId>,
}

impl Closure {
    /// Builds the closure of the relation given by `edges` over events
    /// `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the edges contain a cycle (including a
    /// self-loop), since the temporal order must be irreflexive and
    /// transitive.
    pub fn from_edges(n: usize, edges: &[(EventId, EventId)]) -> Result<Self, CycleError> {
        let started = gem_obs::ambient::active().then(std::time::Instant::now);
        let (topo, out) = topo_from_edges(n, edges)?;
        // succ rows in reverse topological order: row(v) = ∪ (row(w) ∪ {w}).
        let mut succ = vec![DenseBitSet::new(n); n];
        for &v in topo.iter().rev() {
            let mut row = DenseBitSet::new(n);
            for &w in &out[v.index()] {
                row.insert(w as usize);
                row.union_with(&succ[w as usize]);
            }
            succ[v.index()] = row;
        }
        // pred is the transpose.
        let mut pred = vec![DenseBitSet::new(n); n];
        for (i, row) in succ.iter().enumerate() {
            for j in row.iter() {
                pred[j].insert(i);
            }
        }
        let closure = Self::from_parts(succ, pred, topo);
        if let Some(started) = started {
            gem_obs::ambient::time_ns(
                "phase.closure",
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        Ok(closure)
    }

    /// Assembles a closure from already-computed reachability rows and a
    /// topological order, emitting the same probes as [`Closure::from_edges`].
    /// Rows come either from the reverse-topo sweep above or from an
    /// [`IncrementalOrder`] maintained while the computation was built.
    pub(crate) fn from_parts(
        succ: Vec<DenseBitSet>,
        pred: Vec<DenseBitSet>,
        topo: Vec<EventId>,
    ) -> Self {
        let closure = Self { succ, pred, topo };
        if gem_obs::ambient::active() {
            gem_obs::ambient::add("core.closure.built", 1);
            gem_obs::ambient::add("core.closure.edges", closure.pair_count() as u64);
        }
        closure
    }

    /// Number of events covered by this closure.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// True if the closure covers zero events.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// True if `a ⇒ b` (strictly precedes in the temporal order).
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        self.succ[a.index()].contains(b.index())
    }

    /// True if `a` and `b` are potentially concurrent: distinct and
    /// unordered by `⇒` (§2: "no observable order between them").
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// The set of strict successors of `a` (everything `a` precedes).
    pub fn successors(&self, a: EventId) -> &DenseBitSet {
        &self.succ[a.index()]
    }

    /// The set of strict predecessors of `b` (everything preceding `b`).
    pub fn predecessors(&self, b: EventId) -> &DenseBitSet {
        &self.pred[b.index()]
    }

    /// Events in a topological order consistent with `⇒`.
    pub fn topological(&self) -> &[EventId] {
        &self.topo
    }

    /// Number of ordered pairs in the order (size of `⇒` as a relation).
    pub fn pair_count(&self) -> usize {
        self.succ.iter().map(DenseBitSet::len).sum()
    }
}

/// Kahn's algorithm over `edges`: a topological order of `0..n` plus the
/// adjacency lists, or the same [`CycleError`] the closure build reports.
pub(crate) fn topo_from_edges(
    n: usize,
    edges: &[(EventId, EventId)],
) -> Result<(Vec<EventId>, Vec<Vec<u32>>), CycleError> {
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indegree = vec![0u32; n];
    for &(a, b) in edges {
        debug_assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
        out[a.index()].push(b.as_raw());
        indegree[b.index()] += 1;
    }
    let mut stack: Vec<u32> = (0..n as u32)
        .filter(|&i| indegree[i as usize] == 0)
        .collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        topo.push(EventId::from_raw(v));
        for &w in &out[v as usize] {
            indegree[w as usize] -= 1;
            if indegree[w as usize] == 0 {
                stack.push(w);
            }
        }
    }
    if topo.len() != n {
        let on_cycle = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(|i| EventId::from_raw(i as u32))
            .unwrap_or_else(|| EventId::from_raw(0));
        return Err(CycleError { on_cycle });
    }
    Ok((topo, out))
}

const WORD_BITS: usize = 64;

/// Incrementally-maintained reachability over a growing event set.
///
/// The [`ComputationBuilder`](crate::ComputationBuilder) keeps one of these
/// alive across the whole run: every `add_event`/`enable`/`add_precedence`
/// updates the pred/succ rows in place (Italiano-style: on a fresh edge
/// `a → b`, every predecessor of `a` gains every successor of `b`), so
/// sealing no longer pays a from-scratch O(n·m) closure rebuild — it only
/// converts the rows it already has. Cycle detection is preserved: an edge
/// closing a cycle is *not* applied; instead the order latches a
/// [`CycleError`] and ignores all further edges, which `seal` reports.
///
/// Rows are raw `u64` word vectors (not [`DenseBitSet`]) so capacity can
/// grow geometrically without per-event reallocation and so exploration can
/// roll rows back cheaply via [`IncrementalOrder::truncate_to`].
#[derive(Clone, Debug, Default)]
pub struct IncrementalOrder {
    len: usize,
    /// Allocated words per row (`≥ len.div_ceil(64)`, grows by doubling).
    words: usize,
    succ: Vec<Vec<u64>>,
    pred: Vec<Vec<u64>>,
    cycle: Option<CycleError>,
}

impl IncrementalOrder {
    /// An empty order over zero events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds from scratch: `n` nodes, then `edges` in order. Used as the
    /// rollback fallback when a truncation would remove edges between
    /// surviving events.
    pub fn from_edges<'a, I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = &'a (EventId, EventId)>,
    {
        let mut order = Self::new();
        for _ in 0..n {
            order.push_node();
        }
        for &(a, b) in edges {
            order.add_edge(a, b);
        }
        order
    }

    /// Number of nodes (events) tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The latched cycle, if any edge so far closed one.
    pub fn cycle(&self) -> Option<&CycleError> {
        self.cycle.as_ref()
    }

    /// Appends a new node with no edges; its id is the previous `len()`.
    pub fn push_node(&mut self) {
        let needed = (self.len + 1).div_ceil(WORD_BITS);
        if needed > self.words {
            let new_words = needed.max(self.words * 2);
            for row in self.succ.iter_mut().chain(self.pred.iter_mut()) {
                row.resize(new_words, 0);
            }
            self.words = new_words;
        }
        self.succ.push(vec![0; self.words]);
        self.pred.push(vec![0; self.words]);
        self.len += 1;
    }

    #[inline]
    fn row_contains(row: &[u64], i: usize) -> bool {
        row[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Adds the edge `a → b`, updating all reachability rows.
    ///
    /// A self-loop or back edge latches a [`CycleError`] (returned from
    /// [`IncrementalOrder::cycle`]) and freezes the rows: once cyclic, later
    /// edges are ignored, mirroring how `Closure::from_edges` rejects the
    /// whole edge set.
    pub fn add_edge(&mut self, a: EventId, b: EventId) {
        if self.cycle.is_some() {
            return;
        }
        let (ai, bi) = (a.index(), b.index());
        debug_assert!(ai < self.len && bi < self.len, "edge endpoint out of range");
        if a == b || Self::row_contains(&self.pred[ai], bi) {
            self.cycle = Some(CycleError { on_cycle: a });
            return;
        }
        if Self::row_contains(&self.succ[ai], bi) {
            return; // already implied
        }
        // P = {a} ∪ pred(a), S = {b} ∪ succ(b); then succ(p) ∪= S for p ∈ P
        // and pred(s) ∪= P for s ∈ S.
        let mut p_row = self.pred[ai].clone();
        p_row[ai / WORD_BITS] |= 1u64 << (ai % WORD_BITS);
        let mut s_row = self.succ[bi].clone();
        s_row[bi / WORD_BITS] |= 1u64 << (bi % WORD_BITS);
        for (w, &word) in p_row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let p = w * WORD_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for (dst, &src) in self.succ[p].iter_mut().zip(&s_row) {
                    *dst |= src;
                }
            }
        }
        for (w, &word) in s_row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let s = w * WORD_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for (dst, &src) in self.pred[s].iter_mut().zip(&p_row) {
                    *dst |= src;
                }
            }
        }
    }

    /// True if `a ⇒ b` under the edges applied so far. Meaningless once
    /// [`IncrementalOrder::cycle`] is latched (rows are frozen).
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        Self::row_contains(&self.succ[a.index()], b.index())
    }

    /// Rolls back to the first `n` nodes, keeping row allocations.
    ///
    /// Sound only if every edge added since node `n` existed pointed *at* a
    /// node `≥ n` (then masking those columns removes exactly the rolled-back
    /// edges' contributions). The builder checks that invariant and falls
    /// back to [`IncrementalOrder::from_edges`] when it fails; `cycle` is
    /// restored by the caller from its mark.
    pub fn truncate_to(&mut self, n: usize, cycle: Option<CycleError>) {
        debug_assert!(n <= self.len);
        self.succ.truncate(n);
        self.pred.truncate(n);
        let full_words = n / WORD_BITS;
        let rem = n % WORD_BITS;
        for row in self.succ.iter_mut().chain(self.pred.iter_mut()) {
            for word in row.iter_mut().skip(full_words + 1) {
                *word = 0;
            }
            if let Some(word) = row.get_mut(full_words) {
                *word &= if rem == 0 { 0 } else { (1u64 << rem) - 1 };
            }
        }
        self.len = n;
        self.cycle = cycle;
    }

    /// Overrides the latched cycle (used by the builder's rollback rebuild
    /// to restore the exact witness its mark recorded).
    pub(crate) fn set_cycle(&mut self, cycle: Option<CycleError>) {
        self.cycle = cycle;
    }

    /// Converts the rows into [`DenseBitSet`] form for [`Closure`],
    /// trimming each row to exactly `len` capacity.
    pub(crate) fn closure_rows(&self) -> (Vec<DenseBitSet>, Vec<DenseBitSet>) {
        let n = self.len;
        let exact = n.div_ceil(WORD_BITS);
        let to_sets = |rows: &[Vec<u64>]| {
            rows.iter()
                .map(|row| {
                    let mut words = row.clone();
                    words.truncate(exact);
                    DenseBitSet::from_words(words, n)
                })
                .collect()
        };
        (to_sets(&self.succ), to_sets(&self.pred))
    }
}

/// On-demand reachability by DFS over direct edges — the ablation
/// counterpart of [`Closure`] (no precomputation, O(V+E) per query).
#[derive(Clone, Debug)]
pub struct DfsReachability {
    out: Vec<Vec<u32>>,
    /// Epoch-stamped visited marks + DFS stack, reused across queries so a
    /// query allocates nothing after the first (`RefCell`: queries take
    /// `&self`).
    scratch: std::cell::RefCell<DfsScratch>,
}

#[derive(Clone, Debug, Default)]
struct DfsScratch {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
}

impl DfsReachability {
    /// Builds the adjacency representation from direct edges over `0..n`.
    ///
    /// Unlike [`Closure::from_edges`], this performs no cycle check; pair
    /// it with `Closure` when legality matters.
    pub fn from_edges(n: usize, edges: &[(EventId, EventId)]) -> Self {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            out[a.index()].push(b.as_raw());
        }
        Self {
            out,
            scratch: std::cell::RefCell::new(DfsScratch {
                stamp: vec![0; n],
                epoch: 0,
                stack: Vec::new(),
            }),
        }
    }

    /// True if `b` is reachable from `a` by one or more direct edges.
    ///
    /// Direct edges short-circuit without touching the scratch state; longer
    /// paths run an iterative DFS over the reusable stamp buffer.
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        let target = b.as_raw();
        let direct = &self.out[a.index()];
        if direct.contains(&target) {
            return true;
        }
        if direct.is_empty() {
            return false;
        }
        let scratch = &mut *self.scratch.borrow_mut();
        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamp.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;
        scratch.stack.clear();
        scratch.stack.push(a.as_raw());
        scratch.stamp[a.index()] = epoch;
        while let Some(v) = scratch.stack.pop() {
            for &w in &self.out[v as usize] {
                if w == target {
                    scratch.stack.clear();
                    return true;
                }
                if scratch.stamp[w as usize] != epoch {
                    scratch.stamp[w as usize] = epoch;
                    scratch.stack.push(w);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EventId {
        EventId::from_raw(i)
    }

    #[test]
    fn diamond_closure() {
        // e0 -> e1, e0 -> e2, e1 -> e3, e2 -> e3 (the §7 example shape).
        let edges = [(e(0), e(1)), (e(0), e(2)), (e(1), e(3)), (e(2), e(3))];
        let c = Closure::from_edges(4, &edges).unwrap();
        assert!(c.precedes(e(0), e(3)));
        assert!(c.precedes(e(0), e(1)));
        assert!(!c.precedes(e(3), e(0)));
        assert!(c.concurrent(e(1), e(2)));
        assert!(!c.concurrent(e(0), e(3)));
        assert!(!c.concurrent(e(1), e(1)), "concurrency is irreflexive");
        assert_eq!(c.pair_count(), 4 + 1); // 0⇒{1,2,3}, 1⇒3, 2⇒3
    }

    #[test]
    fn cycle_detected() {
        let edges = [(e(0), e(1)), (e(1), e(0))];
        let err = Closure::from_edges(2, &edges).unwrap_err();
        assert!(err.on_cycle == e(0) || err.on_cycle == e(1));
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn self_loop_detected() {
        let err = Closure::from_edges(1, &[(e(0), e(0))]).unwrap_err();
        assert_eq!(err.on_cycle, e(0));
    }

    #[test]
    fn predecessors_are_transpose() {
        let edges = [(e(0), e(1)), (e(1), e(2))];
        let c = Closure::from_edges(3, &edges).unwrap();
        assert_eq!(c.predecessors(e(2)).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(c.successors(e(0)).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(c.predecessors(e(0)).is_empty());
    }

    #[test]
    fn topological_order_is_consistent() {
        let edges = [(e(2), e(0)), (e(0), e(1))];
        let c = Closure::from_edges(3, &edges).unwrap();
        let pos: Vec<usize> = (0..3)
            .map(|i| {
                c.topological()
                    .iter()
                    .position(|&x| x == e(i as u32))
                    .unwrap()
            })
            .collect();
        assert!(pos[2] < pos[0]);
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn empty_and_edgeless() {
        let c = Closure::from_edges(0, &[]).unwrap();
        assert!(c.is_empty());
        let c = Closure::from_edges(3, &[]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.concurrent(e(0), e(2)));
        assert_eq!(c.pair_count(), 0);
    }

    #[test]
    fn dfs_matches_closure_on_random_dags() {
        // Deterministic pseudo-random DAG: edge (i, j) for i < j when hash
        // condition holds.
        let n = 40;
        let mut edges = Vec::new();
        let mut seed = 0x9e3779b97f4a7c15u64;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if seed >> 61 == 0 {
                    edges.push((e(i), e(j)));
                }
            }
        }
        let c = Closure::from_edges(n, &edges).unwrap();
        let d = DfsReachability::from_edges(n, &edges);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                assert_eq!(
                    c.precedes(e(i), e(j)),
                    d.precedes(e(i), e(j)),
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    fn incremental_from(n: usize, edges: &[(EventId, EventId)]) -> IncrementalOrder {
        IncrementalOrder::from_edges(n, edges)
    }

    #[test]
    fn incremental_matches_closure_on_random_dags() {
        let n = 40;
        let mut edges = Vec::new();
        let mut seed = 0xdeadbeefdeadbeefu64;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if seed >> 61 == 0 {
                    edges.push((e(i), e(j)));
                }
            }
        }
        let c = Closure::from_edges(n, &edges).unwrap();
        let inc = incremental_from(n, &edges);
        assert!(inc.cycle().is_none());
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                assert_eq!(
                    c.precedes(e(i), e(j)),
                    inc.precedes(e(i), e(j)),
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn incremental_latches_cycle() {
        let inc = incremental_from(3, &[(e(0), e(1)), (e(1), e(2)), (e(2), e(0))]);
        assert!(inc.cycle().is_some());
        let inc = incremental_from(1, &[(e(0), e(0))]);
        assert_eq!(inc.cycle().unwrap().on_cycle, e(0));
        // Interleaved push/add keeps detecting cycles across growth.
        let mut inc = IncrementalOrder::new();
        for _ in 0..70 {
            inc.push_node();
        }
        inc.add_edge(e(0), e(65));
        inc.add_edge(e(65), e(69));
        assert!(inc.precedes(e(0), e(69)));
        inc.add_edge(e(69), e(0));
        assert!(inc.cycle().is_some());
        // Frozen: further edges are ignored.
        inc.add_edge(e(1), e(2));
        assert!(!inc.precedes(e(1), e(2)));
    }

    #[test]
    fn incremental_truncate_rolls_back_suffix_edges() {
        // Edges into the suffix only — the fast-rollback shape exploration
        // produces (every new edge targets the newest event).
        let mut inc = IncrementalOrder::new();
        for _ in 0..3 {
            inc.push_node();
        }
        inc.add_edge(e(0), e(1));
        inc.add_edge(e(1), e(2));
        let mark = inc.len();
        for _ in 0..130 {
            inc.push_node();
        }
        inc.add_edge(e(2), e(100));
        inc.add_edge(e(0), e(132));
        assert!(inc.precedes(e(0), e(100)));
        inc.truncate_to(mark, None);
        assert_eq!(inc.len(), 3);
        assert!(inc.precedes(e(0), e(2)));
        assert!(inc.precedes(e(1), e(2)));
        let c = Closure::from_edges(3, &[(e(0), e(1)), (e(1), e(2))]).unwrap();
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(c.precedes(e(i), e(j)), inc.precedes(e(i), e(j)));
            }
        }
        // Regrowing after a truncate works on the masked rows.
        inc.push_node();
        inc.add_edge(e(2), e(3));
        assert!(inc.precedes(e(0), e(3)));
    }

    #[test]
    fn incremental_truncate_restores_cycle_mark() {
        let mut inc = incremental_from(2, &[(e(0), e(1))]);
        let mark = inc.len();
        inc.push_node();
        inc.add_edge(e(1), e(2));
        inc.add_edge(e(2), e(0)); // closes a cycle through the suffix
        assert!(inc.cycle().is_some());
        inc.truncate_to(mark, None);
        assert!(inc.cycle().is_none());
        assert!(inc.precedes(e(0), e(1)));
        assert!(!inc.precedes(e(1), e(0)));
    }

    #[test]
    fn incremental_closure_rows_roundtrip() {
        let edges = [(e(0), e(1)), (e(0), e(2)), (e(1), e(3)), (e(2), e(3))];
        let inc = incremental_from(4, &edges);
        let (succ, pred) = inc.closure_rows();
        let c = Closure::from_edges(4, &edges).unwrap();
        for i in 0..4u32 {
            assert_eq!(&succ[i as usize], c.successors(e(i)));
            assert_eq!(&pred[i as usize], c.predecessors(e(i)));
        }
    }

    #[test]
    fn dfs_reuses_scratch_across_queries() {
        let edges = [(e(0), e(1)), (e(1), e(2)), (e(3), e(4))];
        let d = DfsReachability::from_edges(5, &edges);
        for _ in 0..3 {
            assert!(d.precedes(e(0), e(2)));
            assert!(d.precedes(e(0), e(1)), "direct edge fast path");
            assert!(!d.precedes(e(2), e(0)));
            assert!(!d.precedes(e(0), e(4)));
            assert!(d.precedes(e(3), e(4)));
        }
    }

    #[test]
    fn long_chain() {
        let n = 300;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (e(i), e(i + 1))).collect();
        let c = Closure::from_edges(n, &edges).unwrap();
        assert!(c.precedes(e(0), e(n as u32 - 1)));
        assert_eq!(c.pair_count(), n * (n - 1) / 2);
    }
}
