//! The temporal order `⇒`: transitive closure of the enable relation and
//! the element order, minus identity (§3, §5).
//!
//! A legal computation's temporal order must be a strict partial order, so
//! the union of enable edges and element-successor edges must be acyclic.
//! [`Closure`] materialises the order as a reachability matrix (one bitset
//! row per event for successors and one per event for predecessors), giving
//! O(1) `precedes`/`concurrent` queries and O(n/64) predecessor-set
//! retrieval — the operations history enumeration and restriction
//! evaluation perform constantly.
//!
//! An alternative on-demand DFS implementation ([`DfsReachability`]) is
//! provided for the closure-representation ablation (DESIGN.md §4,
//! bench `closure_scaling`).

use crate::{DenseBitSet, EventId};

/// Error returned when the union of enable and element order is cyclic,
/// i.e. the temporal order would not be irreflexive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleError {
    /// An event on the cycle.
    pub on_cycle: EventId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "temporal order is cyclic: event {} precedes itself",
            self.on_cycle
        )
    }
}

impl std::error::Error for CycleError {}

/// Materialised strict partial order over `n` events.
///
/// Built from a DAG of direct edges with [`Closure::from_edges`]; exposes
/// reachability both ways plus a topological order of the events.
#[derive(Clone, PartialEq, Debug)]
pub struct Closure {
    /// `succ[i]` = set of `j` with `i ⇒ j`.
    succ: Vec<DenseBitSet>,
    /// `pred[j]` = set of `i` with `i ⇒ j`.
    pred: Vec<DenseBitSet>,
    /// The events in some topological order of the direct-edge DAG.
    topo: Vec<EventId>,
}

impl Closure {
    /// Builds the closure of the relation given by `edges` over events
    /// `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the edges contain a cycle (including a
    /// self-loop), since the temporal order must be irreflexive and
    /// transitive.
    pub fn from_edges(n: usize, edges: &[(EventId, EventId)]) -> Result<Self, CycleError> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indegree = vec![0u32; n];
        for &(a, b) in edges {
            debug_assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
            out[a.index()].push(b.as_raw());
            indegree[b.index()] += 1;
        }
        // Kahn's algorithm for topological order + cycle detection.
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            topo.push(EventId::from_raw(v));
            for &w in &out[v as usize] {
                indegree[w as usize] -= 1;
                if indegree[w as usize] == 0 {
                    stack.push(w);
                }
            }
        }
        if topo.len() != n {
            let on_cycle = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| EventId::from_raw(i as u32))
                .unwrap_or_else(|| EventId::from_raw(0));
            return Err(CycleError { on_cycle });
        }
        // succ rows in reverse topological order: row(v) = ∪ (row(w) ∪ {w}).
        let mut succ = vec![DenseBitSet::new(n); n];
        for &v in topo.iter().rev() {
            let mut row = DenseBitSet::new(n);
            for &w in &out[v.index()] {
                row.insert(w as usize);
                row.union_with(&succ[w as usize]);
            }
            succ[v.index()] = row;
        }
        // pred is the transpose.
        let mut pred = vec![DenseBitSet::new(n); n];
        for (i, row) in succ.iter().enumerate() {
            for j in row.iter() {
                pred[j].insert(i);
            }
        }
        let closure = Self { succ, pred, topo };
        if gem_obs::ambient::active() {
            gem_obs::ambient::add("core.closure.built", 1);
            gem_obs::ambient::add("core.closure.edges", closure.pair_count() as u64);
        }
        Ok(closure)
    }

    /// Number of events covered by this closure.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// True if the closure covers zero events.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// True if `a ⇒ b` (strictly precedes in the temporal order).
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        self.succ[a.index()].contains(b.index())
    }

    /// True if `a` and `b` are potentially concurrent: distinct and
    /// unordered by `⇒` (§2: "no observable order between them").
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// The set of strict successors of `a` (everything `a` precedes).
    pub fn successors(&self, a: EventId) -> &DenseBitSet {
        &self.succ[a.index()]
    }

    /// The set of strict predecessors of `b` (everything preceding `b`).
    pub fn predecessors(&self, b: EventId) -> &DenseBitSet {
        &self.pred[b.index()]
    }

    /// Events in a topological order consistent with `⇒`.
    pub fn topological(&self) -> &[EventId] {
        &self.topo
    }

    /// Number of ordered pairs in the order (size of `⇒` as a relation).
    pub fn pair_count(&self) -> usize {
        self.succ.iter().map(DenseBitSet::len).sum()
    }
}

/// On-demand reachability by DFS over direct edges — the ablation
/// counterpart of [`Closure`] (no precomputation, O(V+E) per query).
#[derive(Clone, Debug)]
pub struct DfsReachability {
    out: Vec<Vec<u32>>,
}

impl DfsReachability {
    /// Builds the adjacency representation from direct edges over `0..n`.
    ///
    /// Unlike [`Closure::from_edges`], this performs no cycle check; pair
    /// it with `Closure` when legality matters.
    pub fn from_edges(n: usize, edges: &[(EventId, EventId)]) -> Self {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            out[a.index()].push(b.as_raw());
        }
        Self { out }
    }

    /// True if `b` is reachable from `a` by one or more direct edges.
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        let n = self.out.len();
        let mut seen = DenseBitSet::new(n);
        let mut stack = vec![a.as_raw()];
        while let Some(v) = stack.pop() {
            for &w in &self.out[v as usize] {
                if w == b.as_raw() {
                    return true;
                }
                if seen.insert(w as usize) {
                    stack.push(w);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EventId {
        EventId::from_raw(i)
    }

    #[test]
    fn diamond_closure() {
        // e0 -> e1, e0 -> e2, e1 -> e3, e2 -> e3 (the §7 example shape).
        let edges = [(e(0), e(1)), (e(0), e(2)), (e(1), e(3)), (e(2), e(3))];
        let c = Closure::from_edges(4, &edges).unwrap();
        assert!(c.precedes(e(0), e(3)));
        assert!(c.precedes(e(0), e(1)));
        assert!(!c.precedes(e(3), e(0)));
        assert!(c.concurrent(e(1), e(2)));
        assert!(!c.concurrent(e(0), e(3)));
        assert!(!c.concurrent(e(1), e(1)), "concurrency is irreflexive");
        assert_eq!(c.pair_count(), 4 + 1); // 0⇒{1,2,3}, 1⇒3, 2⇒3
    }

    #[test]
    fn cycle_detected() {
        let edges = [(e(0), e(1)), (e(1), e(0))];
        let err = Closure::from_edges(2, &edges).unwrap_err();
        assert!(err.on_cycle == e(0) || err.on_cycle == e(1));
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn self_loop_detected() {
        let err = Closure::from_edges(1, &[(e(0), e(0))]).unwrap_err();
        assert_eq!(err.on_cycle, e(0));
    }

    #[test]
    fn predecessors_are_transpose() {
        let edges = [(e(0), e(1)), (e(1), e(2))];
        let c = Closure::from_edges(3, &edges).unwrap();
        assert_eq!(c.predecessors(e(2)).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(c.successors(e(0)).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(c.predecessors(e(0)).is_empty());
    }

    #[test]
    fn topological_order_is_consistent() {
        let edges = [(e(2), e(0)), (e(0), e(1))];
        let c = Closure::from_edges(3, &edges).unwrap();
        let pos: Vec<usize> = (0..3)
            .map(|i| {
                c.topological()
                    .iter()
                    .position(|&x| x == e(i as u32))
                    .unwrap()
            })
            .collect();
        assert!(pos[2] < pos[0]);
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn empty_and_edgeless() {
        let c = Closure::from_edges(0, &[]).unwrap();
        assert!(c.is_empty());
        let c = Closure::from_edges(3, &[]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.concurrent(e(0), e(2)));
        assert_eq!(c.pair_count(), 0);
    }

    #[test]
    fn dfs_matches_closure_on_random_dags() {
        // Deterministic pseudo-random DAG: edge (i, j) for i < j when hash
        // condition holds.
        let n = 40;
        let mut edges = Vec::new();
        let mut seed = 0x9e3779b97f4a7c15u64;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if seed >> 61 == 0 {
                    edges.push((e(i), e(j)));
                }
            }
        }
        let c = Closure::from_edges(n, &edges).unwrap();
        let d = DfsReachability::from_edges(n, &edges);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                assert_eq!(
                    c.precedes(e(i), e(j)),
                    d.precedes(e(i), e(j)),
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn long_chain() {
        let n = 300;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (e(i), e(i + 1))).collect();
        let c = Closure::from_edges(n, &edges).unwrap();
        assert!(c.precedes(e(0), e(n as u32 - 1)));
        assert_eq!(c.pair_count(), n * (n - 1) / 2);
    }
}
