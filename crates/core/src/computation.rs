//! Computations: complete concurrent executions (§3).
//!
//! A [`Computation`] is an immutable record of a set of events, the enable
//! relation between them, the element order (induced by per-element
//! occurrence numbers), and the materialised temporal order. Computations
//! are constructed through [`ComputationBuilder`] and *sealed*, at which
//! point the temporal order is built and checked for irreflexivity
//! (acyclicity). Scope-rule legality is checked separately by
//! [`check_legality`](crate::check_legality), so that deliberately illegal
//! computations can be constructed and diagnosed.

use std::fmt;
use std::sync::Arc;

use crate::order::{topo_from_edges, Closure, CycleError, IncrementalOrder};
use crate::{ClassId, ElementId, Event, EventId, Structure, ThreadTag, Value};

/// Errors arising while building a computation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// The element id is not from this structure.
    UnknownElement(ElementId),
    /// The class id is not from this structure.
    UnknownClass(ClassId),
    /// The event id has not been added to this builder.
    UnknownEvent(EventId),
    /// The enable or element-order union is cyclic (reported at seal).
    Cyclic(CycleError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownElement(e) => write!(f, "unknown element {e}"),
            BuildError::UnknownClass(c) => write!(f, "unknown class {c}"),
            BuildError::UnknownEvent(e) => write!(f, "unknown event {e}"),
            BuildError::Cyclic(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<CycleError> for BuildError {
    fn from(c: CycleError) -> Self {
        BuildError::Cyclic(c)
    }
}

// Domain tags keeping the fingerprint's item kinds in disjoint hash
// families (an enable edge can never collide with a precedence over the
// same endpoints, etc.).
const FP_EVENT: u64 = 1;
const FP_ENABLE: u64 = 2;
const FP_PRECEDENCE: u64 = 3;
const FP_MEMBERSHIP: u64 = 4;
const FP_THREAD: u64 = 5;

/// SplitMix64 finalizer: spreads one word over all 64 bits so the
/// commutative sum in [`ComputationBuilder`] keeps distinct item
/// multisets apart.
fn fp_mix(z: u64) -> u64 {
    let z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes one fingerprint item — a short, domain-tagged word sequence —
/// into a single well-mixed word. Items combine by wrapping addition,
/// which is what makes the rolling fingerprint schedule-independent: two
/// schedules produce the same *set* of items in different orders.
fn fp_item(words: &[u64]) -> u64 {
    let mut h = 0x517c_c1b7_2722_0a95;
    for &w in words {
        h = fp_mix(h ^ w);
    }
    h
}

/// Serialises a parameter value into fingerprint words (same variant-tag
/// scheme as the exact canonical key, so distinct values never alias).
fn fp_value(words: &mut Vec<u64>, v: &Value) {
    match v {
        Value::Unit => words.push(0),
        Value::Bool(b) => words.extend([1, u64::from(*b)]),
        Value::Int(i) => words.extend([2, *i as u64]),
        Value::Str(s) => {
            words.extend([3, s.len() as u64]);
            words.extend(s.bytes().map(u64::from));
        }
        Value::Pair(a, b) => {
            words.push(4);
            fp_value(words, a);
            fp_value(words, b);
        }
    }
}

/// The schedule-independent coordinate of an event: its element and its
/// occurrence number there, packed into one word. Event *ids* are
/// insertion-ordered (schedule-dependent), so fingerprint items must
/// never mention them.
fn fp_coord(element: ElementId, seq: u32) -> u64 {
    (u64::from(element.as_raw()) << 32) | u64::from(seq)
}

/// Incremental constructor for [`Computation`].
///
/// # Examples
///
/// Modelling the paper's §7 diamond computation
/// (`e1 ⊳ e2`, `e1 ⊳ e3`, `e2 ⊳ e4`, `e3 ⊳ e4`):
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{ComputationBuilder, Structure};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let els: Vec<_> = (0..4)
///     .map(|i| s.add_element(format!("P{i}"), &[act]))
///     .collect::<Result<_, _>>()?;
/// let mut b = ComputationBuilder::new(s);
/// let e: Vec<_> = els
///     .iter()
///     .map(|&el| b.add_event(el, act, vec![]))
///     .collect::<Result<_, _>>()?;
/// b.enable(e[0], e[1])?;
/// b.enable(e[0], e[2])?;
/// b.enable(e[1], e[3])?;
/// b.enable(e[2], e[3])?;
/// let c = b.seal()?;
/// assert!(c.temporally_precedes(e[0], e[3]));
/// assert!(c.concurrent(e[1], e[2]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ComputationBuilder {
    structure: Arc<Structure>,
    events: Vec<Event>,
    element_events: Vec<Vec<EventId>>,
    enables: Vec<(EventId, EventId)>,
    precedences: Vec<(EventId, EventId)>,
    memberships: Vec<Membership>,
    /// Reachability maintained edge-by-edge so sealing needs no O(n·m)
    /// closure rebuild (the explore→seal hot path, DESIGN.md §4).
    order: IncrementalOrder,
    /// Events that received a *fresh* thread tag, in push order — the undo
    /// journal for [`ComputationBuilder::truncate_to`].
    tag_log: Vec<EventId>,
    /// Rolling schedule-independent fingerprint: the wrapping sum of one
    /// well-mixed hash per event, enable edge, precedence, membership, and
    /// thread tag, each expressed in `(element, seq)` coordinates. Updated
    /// in O(item) on insertion and restored exactly by
    /// [`ComputationBuilder::truncate_to`], so the explore→seal hot path
    /// gets a computation digest for free; see
    /// [`Computation::fingerprint`] for the contract.
    fp: u64,
}

/// A snapshot of a builder's growth point, taken with
/// [`ComputationBuilder::mark`] and restored with
/// [`ComputationBuilder::truncate_to`].
///
/// Exploration grows a computation along a schedule and rolls it back when
/// backtracking; a mark plus truncate is O(rolled-back suffix) instead of
/// the full-builder clone per branch it replaces.
#[derive(Clone, Debug)]
pub struct BuilderMark {
    events: usize,
    enables: usize,
    precedences: usize,
    memberships: usize,
    tags: usize,
    cycle: Option<CycleError>,
    fp: u64,
}

/// A dynamic group-structure change (§5): the event `event` adds `member`
/// to `group`. Group structure grows monotonically; the membership is in
/// force for exactly the events that temporally follow (or are) the
/// membership event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Membership {
    /// The event representing the structure change.
    pub event: EventId,
    /// The group gaining a member.
    pub group: crate::GroupId,
    /// The new member.
    pub member: crate::NodeRef,
}

impl ComputationBuilder {
    /// Creates a builder over `structure`.
    pub fn new(structure: impl Into<Arc<Structure>>) -> Self {
        let structure = structure.into();
        let element_events = vec![Vec::new(); structure.element_count()];
        Self {
            structure,
            events: Vec::new(),
            element_events,
            enables: Vec::new(),
            precedences: Vec::new(),
            memberships: Vec::new(),
            order: IncrementalOrder::new(),
            tag_log: Vec::new(),
            fp: 0,
        }
    }

    /// The structure this builder constructs computations over.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Adds an event of `class` at `element` carrying `params`.
    ///
    /// The event receives the next occurrence number at its element; the
    /// element order between events at the same element follows insertion
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownElement`] / [`BuildError::UnknownClass`]
    /// for foreign ids. Whether `class` is *allowed* at `element` is a
    /// legality question left to [`check_legality`](crate::check_legality).
    pub fn add_event(
        &mut self,
        element: ElementId,
        class: ClassId,
        params: Vec<Value>,
    ) -> Result<EventId, BuildError> {
        if element.index() >= self.structure.element_count() {
            return Err(BuildError::UnknownElement(element));
        }
        if class.index() >= self.structure.class_count() {
            return Err(BuildError::UnknownClass(class));
        }
        let id = EventId::from_raw(self.events.len() as u32);
        let chain = &self.element_events[element.index()];
        let seq = chain.len() as u32;
        let prev = chain.last().copied();
        let mut words = Vec::with_capacity(4 + 2 * params.len());
        words.extend([FP_EVENT, fp_coord(element, seq), u64::from(class.as_raw())]);
        words.push(params.len() as u64);
        for p in &params {
            fp_value(&mut words, p);
        }
        self.fp = self.fp.wrapping_add(fp_item(&words));
        self.element_events[element.index()].push(id);
        self.events.push(Event {
            id,
            element,
            class,
            seq,
            params,
            threads: Vec::new(),
        });
        self.order.push_node();
        if let Some(prev) = prev {
            // Consecutive occurrences at one element are ordered (§5).
            self.order.add_edge(prev, id);
        }
        Ok(id)
    }

    /// Records the enable edge `from ⊳ to`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownEvent`] if either endpoint has not been
    /// added. Cycles are reported at [`ComputationBuilder::seal`].
    pub fn enable(&mut self, from: EventId, to: EventId) -> Result<(), BuildError> {
        if from.index() >= self.events.len() {
            return Err(BuildError::UnknownEvent(from));
        }
        if to.index() >= self.events.len() {
            return Err(BuildError::UnknownEvent(to));
        }
        // Duplicate edges collapse at assembly, so only the first sighting
        // may contribute to the fingerprint — otherwise two schedules
        // emitting the same edge set with different multiplicities would
        // fingerprint the same computation differently.
        if !self.enables.contains(&(from, to)) {
            self.fp = self.fp.wrapping_add(fp_item(&[
                FP_ENABLE,
                self.event_fp_coord(from),
                self.event_fp_coord(to),
            ]));
        }
        self.enables.push((from, to));
        self.order.add_edge(from, to);
        Ok(())
    }

    /// The `(element, seq)` fingerprint coordinate of an already-added
    /// event.
    fn event_fp_coord(&self, e: EventId) -> u64 {
        let ev = &self.events[e.index()];
        fp_coord(ev.element, ev.seq)
    }

    /// Records a pure temporal-precedence constraint `before ⇒ after`
    /// without an enable edge or element order between the events.
    ///
    /// GEM derives the temporal order from the enable relation and the
    /// element order; a *projection* of a computation onto significant
    /// objects (§9), however, must preserve the temporal order the
    /// significant events had in the full computation even where the
    /// mediating (insignificant) events are gone. This method is the
    /// device for that: the pair contributes to the temporal order only —
    /// it does not appear in [`Computation::enables`] or the element
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownEvent`] if either endpoint has not
    /// been added. Cycles are reported at [`ComputationBuilder::seal`].
    pub fn add_precedence(&mut self, before: EventId, after: EventId) -> Result<(), BuildError> {
        if before.index() >= self.events.len() {
            return Err(BuildError::UnknownEvent(before));
        }
        if after.index() >= self.events.len() {
            return Err(BuildError::UnknownEvent(after));
        }
        if !self.precedences.contains(&(before, after)) {
            self.fp = self.fp.wrapping_add(fp_item(&[
                FP_PRECEDENCE,
                self.event_fp_coord(before),
                self.event_fp_coord(after),
            ]));
        }
        self.precedences.push((before, after));
        self.order.add_edge(before, after);
        Ok(())
    }

    /// Declares that an already-added event represents a dynamic group
    /// change (§5): from `event` onwards, `member` belongs to `group`.
    ///
    /// Group structure grows monotonically; the new membership affects the
    /// access rules for enable edges whose *source* temporally follows (or
    /// is) the membership event — see
    /// [`check_legality`](crate::check_legality).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownEvent`] if the event has not been
    /// added; unknown group/member ids surface as panics at legality
    /// checking, matching [`Structure::add_member`]'s validation there.
    pub fn add_membership_event(
        &mut self,
        event: EventId,
        group: crate::GroupId,
        member: crate::NodeRef,
    ) -> Result<(), BuildError> {
        if event.index() >= self.events.len() {
            return Err(BuildError::UnknownEvent(event));
        }
        let (kind, raw) = match member {
            crate::NodeRef::Element(el) => (0u64, el.as_raw()),
            crate::NodeRef::Group(g) => (1u64, g.as_raw()),
        };
        self.fp = self.fp.wrapping_add(fp_item(&[
            FP_MEMBERSHIP,
            self.event_fp_coord(event),
            u64::from(group.as_raw()),
            kind,
            u64::from(raw),
        ]));
        self.memberships.push(Membership {
            event,
            group,
            member,
        });
        Ok(())
    }

    /// Attaches a thread tag to an event (§8.3).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownEvent`] if the event has not been added.
    pub fn tag_thread(&mut self, event: EventId, tag: ThreadTag) -> Result<(), BuildError> {
        let ev = self
            .events
            .get_mut(event.index())
            .ok_or(BuildError::UnknownEvent(event))?;
        if !ev.threads.contains(&tag) {
            ev.threads.push(tag);
            let item = fp_item(&[
                FP_THREAD,
                fp_coord(ev.element, ev.seq),
                u64::from(tag.thread_type().as_raw()),
                u64::from(tag.instance()),
            ]);
            self.tag_log.push(event);
            self.fp = self.fp.wrapping_add(item);
        }
        Ok(())
    }

    /// Number of events added so far.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The events added so far, in emission order (index = raw event id).
    ///
    /// Together with [`ComputationBuilder::enable_journal`] and
    /// [`ComputationBuilder::order_precedes`] this lets incremental
    /// observers (e.g. prefix-sharing restriction checkers) read the
    /// computation-under-construction without sealing it.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The enable edges in insertion order (the builder's undo journal;
    /// may contain duplicates that [`Computation::enables`] would drop).
    pub fn enable_journal(&self) -> &[(EventId, EventId)] {
        &self.enables
    }

    /// The explicit precedence edges in insertion order.
    pub fn precedence_journal(&self) -> &[(EventId, EventId)] {
        &self.precedences
    }

    /// The membership events added so far.
    pub fn memberships(&self) -> &[Membership] {
        &self.memberships
    }

    /// Number of fresh thread tags recorded so far.
    pub fn tag_count(&self) -> usize {
        self.tag_log.len()
    }

    /// True if `a` temporally precedes `b` in the computation built so
    /// far (transitive closure of enables ∪ explicit precedences ∪ the
    /// per-element order), per the incrementally maintained reachability.
    ///
    /// For simulation-grown computations — where every edge targets the
    /// newest event — the order between two already-added events never
    /// changes as the builder grows, so this answer is final as soon as
    /// both events exist.
    pub fn order_precedes(&self, a: EventId, b: EventId) -> bool {
        self.order.precedes(a, b)
    }

    /// Snapshots the current growth point for a later
    /// [`ComputationBuilder::truncate_to`].
    pub fn mark(&self) -> BuilderMark {
        BuilderMark {
            events: self.events.len(),
            enables: self.enables.len(),
            precedences: self.precedences.len(),
            memberships: self.memberships.len(),
            tags: self.tag_log.len(),
            cycle: self.order.cycle().cloned(),
            fp: self.fp,
        }
    }

    /// The rolling schedule-independent fingerprint of the computation
    /// built so far — the value [`Computation::fingerprint`] will carry
    /// after sealing. Maintained incrementally, so reading it is free.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Rolls the builder back to `mark`, undoing every event, edge,
    /// membership, and thread tag added since.
    ///
    /// The incremental order rolls back by column masking when every edge
    /// added since the mark points *at* a post-mark event — which is always
    /// the case for simulation-grown computations, where each step's edges
    /// all target the event it just emitted. Retroactive edges between
    /// pre-mark events trigger a full rebuild from the surviving edges
    /// instead, so the rollback is correct for arbitrary builders.
    ///
    /// # Panics
    ///
    /// Panics if the builder is shorter than the mark (marks only roll
    /// *back*).
    pub fn truncate_to(&mut self, mark: &BuilderMark) {
        assert!(
            mark.events <= self.events.len()
                && mark.enables <= self.enables.len()
                && mark.precedences <= self.precedences.len()
                && mark.memberships <= self.memberships.len()
                && mark.tags <= self.tag_log.len(),
            "mark is ahead of the builder"
        );
        while self.tag_log.len() > mark.tags {
            let ev = self.tag_log.pop().expect("checked above");
            // Tags on rolled-back events vanish with the event itself.
            if ev.index() < mark.events {
                self.events[ev.index()].threads.pop();
            }
        }
        for ev in self.events[mark.events..].iter().rev() {
            let popped = self.element_events[ev.element.index()].pop();
            debug_assert_eq!(popped, Some(ev.id), "element chains append-only");
        }
        let fast = self.enables[mark.enables..]
            .iter()
            .chain(&self.precedences[mark.precedences..])
            .all(|&(_, to)| to.index() >= mark.events);
        self.events.truncate(mark.events);
        self.enables.truncate(mark.enables);
        self.precedences.truncate(mark.precedences);
        self.memberships.truncate(mark.memberships);
        self.fp = mark.fp;
        if fast {
            self.order.truncate_to(mark.events, mark.cycle.clone());
        } else {
            let mut edges = self.enables.clone();
            edges.extend_from_slice(&self.precedences);
            for evs in &self.element_events {
                for pair in evs.windows(2) {
                    edges.push((pair[0], pair[1]));
                }
            }
            self.order = IncrementalOrder::from_edges(mark.events, &edges);
            self.order.set_cycle(mark.cycle.clone());
        }
    }

    /// The direct edge set feeding the temporal order, in the canonical
    /// order: enables, then precedences, then per-element occurrence
    /// chains.
    fn order_edges(&self) -> Vec<(EventId, EventId)> {
        let mut edges = self.enables.clone();
        edges.extend(self.precedences.iter().copied());
        for evs in &self.element_events {
            for pair in evs.windows(2) {
                edges.push((pair[0], pair[1]));
            }
        }
        edges
    }

    /// Computes the temporal order from the incrementally-maintained rows:
    /// one Kahn pass for the topological order / cycle report, then a
    /// straight copy of the reachability rows — no per-row union sweep.
    fn build_closure(&self) -> Result<Closure, BuildError> {
        let started = gem_obs::ambient::active().then(std::time::Instant::now);
        let n = self.events.len();
        let edges = self.order_edges();
        match topo_from_edges(n, &edges) {
            Ok((topo, _)) => {
                debug_assert!(
                    self.order.cycle().is_none(),
                    "incremental order latched a cycle on an acyclic edge set"
                );
                let (succ, pred) = self.order.closure_rows();
                let closure = Closure::from_parts(succ, pred, topo);
                if let Some(started) = started {
                    gem_obs::ambient::time_ns(
                        "phase.closure",
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                Ok(closure)
            }
            Err(cycle) => {
                debug_assert!(
                    self.order.cycle().is_some(),
                    "incremental order missed a cycle"
                );
                Err(cycle.into())
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // internal seal plumbing, one caller
    fn assemble(
        structure: Arc<Structure>,
        events: Vec<Event>,
        element_events: Vec<Vec<EventId>>,
        enables: &[(EventId, EventId)],
        precedences: &[(EventId, EventId)],
        memberships: Vec<Membership>,
        closure: Closure,
        fp: u64,
    ) -> Computation {
        let n = events.len();
        let mut enables_out: Vec<Vec<EventId>> = vec![Vec::new(); n];
        let mut enables_in: Vec<Vec<EventId>> = vec![Vec::new(); n];
        for &(a, b) in enables {
            if !enables_out[a.index()].contains(&b) {
                enables_out[a.index()].push(b);
                enables_in[b.index()].push(a);
            }
        }
        let mut precedences_out: Vec<(EventId, EventId)> = Vec::with_capacity(precedences.len());
        for &p in precedences {
            if !precedences_out.contains(&p) {
                precedences_out.push(p);
            }
        }
        Computation {
            structure,
            events,
            enables_out,
            enables_in,
            element_events,
            precedences: precedences_out,
            closure,
            memberships,
            fp,
        }
    }

    /// Seals the builder: computes the temporal order and checks that it is
    /// a strict partial order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Cyclic`] if the union of the enable relation
    /// and the element order is cyclic.
    pub fn seal(self) -> Result<Computation, BuildError> {
        let closure = self.build_closure()?;
        Ok(Self::assemble(
            self.structure,
            self.events,
            self.element_events,
            &self.enables,
            &self.precedences,
            self.memberships,
            closure,
            self.fp,
        ))
    }

    /// Seals without consuming the builder: the sealed [`Computation`]
    /// copies the event records, but the builder stays usable — this is
    /// what lets exploration extract a computation per run from one shared,
    /// rolled-back builder instead of cloning the whole trace first.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Cyclic`] if the union of the enable relation
    /// and the element order is cyclic.
    pub fn seal_ref(&self) -> Result<Computation, BuildError> {
        let closure = self.build_closure()?;
        Ok(Self::assemble(
            Arc::clone(&self.structure),
            self.events.clone(),
            self.element_events.clone(),
            &self.enables,
            &self.precedences,
            self.memberships.clone(),
            closure,
            self.fp,
        ))
    }
}

/// A complete, sealed GEM computation.
///
/// Exposes the three relations of the model: the enable relation
/// ([`Computation::enables`]), the element order
/// ([`Computation::element_precedes`]), and the temporal order
/// ([`Computation::temporally_precedes`]), which is by construction the
/// transitive closure of the former two minus identity.
#[derive(Clone, Debug)]
pub struct Computation {
    structure: Arc<Structure>,
    events: Vec<Event>,
    enables_out: Vec<Vec<EventId>>,
    enables_in: Vec<Vec<EventId>>,
    element_events: Vec<Vec<EventId>>,
    precedences: Vec<(EventId, EventId)>,
    closure: Closure,
    memberships: Vec<Membership>,
    fp: u64,
}

impl Computation {
    /// An empty computation over `structure`.
    pub fn empty(structure: impl Into<Arc<Structure>>) -> Self {
        ComputationBuilder::new(structure)
            .seal()
            .expect("empty computation cannot be cyclic")
    }

    /// The static structure this computation is over.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Shared handle to the structure (cheap to clone).
    pub fn structure_arc(&self) -> Arc<Structure> {
        Arc::clone(&self.structure)
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// True if the computation has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this computation.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// All events, in id order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Human-readable label for `id` in the paper's `El.Class^seq`
    /// notation (e.g. `Reader1.StartRead^0`); used by counterexample
    /// descriptions, dot export, and blame reports.
    pub fn event_label(&self, id: EventId) -> String {
        let ev = self.event(id);
        format!(
            "{}.{}^{}",
            self.structure.element_info(ev.element).name(),
            self.structure.class_info(ev.class).name(),
            ev.seq
        )
    }

    /// Iterates over the ids of all events.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.events.len()).map(|i| EventId::from_raw(i as u32))
    }

    /// Ids of events of class `class`, in id order.
    pub fn events_of_class(&self, class: ClassId) -> impl Iterator<Item = EventId> + '_ {
        self.events
            .iter()
            .filter(move |e| e.class == class)
            .map(|e| e.id)
    }

    /// Events at `element`, in element order.
    pub fn events_at(&self, element: ElementId) -> &[EventId] {
        &self.element_events[element.index()]
    }

    /// The `i`-th event at `element` (the paper's `EL^i`), if it occurred.
    pub fn nth_at(&self, element: ElementId, i: usize) -> Option<EventId> {
        self.element_events[element.index()].get(i).copied()
    }

    /// True if `from ⊳ to` is a (direct) enable edge.
    pub fn enables(&self, from: EventId, to: EventId) -> bool {
        self.enables_out[from.index()].contains(&to)
    }

    /// Events directly enabled by `e`.
    pub fn enabled_from(&self, e: EventId) -> &[EventId] {
        &self.enables_out[e.index()]
    }

    /// Events that directly enable `e`.
    pub fn enablers_of(&self, e: EventId) -> &[EventId] {
        &self.enables_in[e.index()]
    }

    /// Iterates over all enable edges.
    pub fn enable_edges(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.enables_out
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |&b| (EventId::from_raw(i as u32), b)))
    }

    /// The explicit temporal-precedence pairs recorded with
    /// [`ComputationBuilder::add_precedence`], deduplicated, in insertion
    /// order. They are already folded into [`Computation::closure`];
    /// exposing them lets schedule-independent keys serialise the
    /// computation's *generators* exactly without walking the closure.
    pub fn precedence_edges(&self) -> &[(EventId, EventId)] {
        &self.precedences
    }

    /// A schedule-independent 64-bit fingerprint of this computation,
    /// maintained incrementally during construction (so reading it costs
    /// nothing). It hashes exactly the generators the canonical key
    /// serialises — events with classes, parameters, and thread tags in
    /// `(element, seq)` coordinates, the enable-edge set, the
    /// precedence-edge set, and the memberships — so two schedules
    /// sealing to the same computation always agree on it. Distinct
    /// computations collide only with hash probability; callers needing
    /// exactness must confirm a fingerprint match with an exact key
    /// comparison (see `gem_verify`'s dedup module).
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// True if `a ⇒ₑ b`: same element and `a` occurs earlier (§5 — partial,
    /// irreflexive, transitive; total within an element).
    pub fn element_precedes(&self, a: EventId, b: EventId) -> bool {
        let (ea, eb) = (&self.events[a.index()], &self.events[b.index()]);
        ea.element == eb.element && ea.seq < eb.seq
    }

    /// True if `a ⇒ b` in the temporal order.
    pub fn temporally_precedes(&self, a: EventId, b: EventId) -> bool {
        self.closure.precedes(a, b)
    }

    /// True if `a` and `b` are potentially concurrent (distinct, unordered).
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        self.closure.concurrent(a, b)
    }

    /// The materialised temporal order.
    pub fn closure(&self) -> &Closure {
        &self.closure
    }

    /// `new(e)` (§8.2): no event observably follows `e` in this
    /// computation.
    pub fn is_new(&self, e: EventId) -> bool {
        self.closure.successors(e).is_empty()
    }

    /// `e1 at E2` (§8.2): `e1` occurred and has not enabled an event of
    /// class `class`.
    pub fn at_control_point(&self, e: EventId, class: ClassId) -> bool {
        !self.enables_out[e.index()]
            .iter()
            .any(|&s| self.events[s.index()].class == class)
    }

    /// The dynamic group-structure changes of this computation (§5), in
    /// declaration order.
    pub fn memberships(&self) -> &[Membership] {
        &self.memberships
    }

    /// The structure as seen by `event`: the static structure plus every
    /// dynamic membership whose event temporally precedes (or is)
    /// `event`. Groups grow monotonically along the temporal order.
    ///
    /// Returns the shared static structure unchanged when no dynamic
    /// membership applies, so the common case allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if a membership references ids foreign to the structure or
    /// would create a group cycle.
    pub fn structure_at(&self, event: EventId) -> Arc<Structure> {
        let applicable: Vec<&Membership> = self
            .memberships
            .iter()
            .filter(|m| m.event == event || self.closure.precedes(m.event, event))
            .collect();
        if applicable.is_empty() {
            return Arc::clone(&self.structure);
        }
        let mut s = (*self.structure).clone();
        for m in applicable {
            s.add_member(m.group, m.member)
                .expect("membership event ids are valid and acyclic");
        }
        Arc::new(s)
    }

    /// Returns a copy of this computation with every event's thread tags
    /// replaced by `tags(event_id)`.
    ///
    /// Thread assignment (§8.3) is often inferred *after* a computation is
    /// built (e.g. by matching path expressions); this rebuilds the event
    /// records without recomputing the temporal order, which is unaffected
    /// by tags.
    pub fn retagged(&self, mut tags: impl FnMut(EventId) -> Vec<ThreadTag>) -> Computation {
        let mut copy = self.clone();
        let mut fp_delta = 0u64;
        for ev in &mut copy.events {
            let coord = fp_coord(ev.element, ev.seq);
            let tag_item = |t: &ThreadTag| {
                fp_item(&[
                    FP_THREAD,
                    coord,
                    u64::from(t.thread_type().as_raw()),
                    u64::from(t.instance()),
                ])
            };
            for t in &ev.threads {
                fp_delta = fp_delta.wrapping_sub(tag_item(t));
            }
            ev.threads = tags(ev.id);
            for t in &ev.threads {
                fp_delta = fp_delta.wrapping_add(tag_item(t));
            }
        }
        copy.fp = copy.fp.wrapping_add(fp_delta);
        copy
    }

    /// Events with no temporal predecessor (the minimal events).
    pub fn minimal_events(&self) -> Vec<EventId> {
        self.event_ids()
            .filter(|&e| self.closure.predecessors(e).is_empty())
            .collect()
    }

    /// Events with no temporal successor (the maximal events).
    pub fn maximal_events(&self) -> Vec<EventId> {
        self.event_ids().filter(|&e| self.is_new(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var_structure() -> (Structure, ElementId, ClassId, ClassId) {
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &["newval"]).unwrap();
        let getval = s.add_class("Getval", &["oldval"]).unwrap();
        let var = s.add_element("Var", &[assign, getval]).unwrap();
        (s, var, assign, getval)
    }

    #[test]
    fn element_order_is_total_at_element() {
        let (s, var, assign, getval) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let g1 = b.add_event(var, getval, vec![Value::Int(1)]).unwrap();
        let a2 = b.add_event(var, assign, vec![Value::Int(2)]).unwrap();
        let c = b.seal().unwrap();
        assert!(c.element_precedes(a1, g1));
        assert!(c.element_precedes(g1, a2));
        assert!(c.element_precedes(a1, a2), "element order is transitive");
        assert!(!c.element_precedes(a2, a1));
        // Element order feeds the temporal order even without enables.
        assert!(c.temporally_precedes(a1, a2));
        assert!(!c.concurrent(a1, g1));
    }

    #[test]
    fn occurrence_numbers_assigned_in_order() {
        let (s, var, assign, _) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let a2 = b.add_event(var, assign, vec![Value::Int(2)]).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(c.event(a1).seq(), 0);
        assert_eq!(c.event(a2).seq(), 1);
        assert_eq!(c.nth_at(var, 0), Some(a1));
        assert_eq!(c.nth_at(var, 1), Some(a2));
        assert_eq!(c.nth_at(var, 2), None);
        assert_eq!(c.events_at(var), &[a1, a2]);
    }

    #[test]
    fn enable_vs_element_order_distinction() {
        // §5: two assignments to Var from different processes are related
        // by the element order but NOT the enable relation.
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &["newval"]).unwrap();
        let var = s.add_element("Var", &[assign]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let assign1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let assign2 = b.add_event(var, assign, vec![Value::Int(2)]).unwrap();
        let c = b.seal().unwrap();
        assert!(!c.enables(assign1, assign2));
        assert!(c.element_precedes(assign1, assign2));
        assert!(c.temporally_precedes(assign1, assign2));
    }

    #[test]
    fn cyclic_enable_rejected_at_seal() {
        let (s, var, assign, _) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![]).unwrap();
        let a2 = b.add_event(var, assign, vec![]).unwrap();
        // Element order says a1 before a2; enabling a2 ⊳ a1 closes a cycle.
        b.enable(a2, a1).unwrap();
        assert!(matches!(b.seal(), Err(BuildError::Cyclic(_))));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (s, var, assign, _) = var_structure();
        let mut b = ComputationBuilder::new(s);
        assert!(matches!(
            b.add_event(ElementId::from_raw(9), assign, vec![]),
            Err(BuildError::UnknownElement(_))
        ));
        assert!(matches!(
            b.add_event(var, ClassId::from_raw(9), vec![]),
            Err(BuildError::UnknownClass(_))
        ));
        let e = b.add_event(var, assign, vec![]).unwrap();
        assert!(matches!(
            b.enable(e, EventId::from_raw(5)),
            Err(BuildError::UnknownEvent(_))
        ));
        assert!(matches!(
            b.tag_thread(
                EventId::from_raw(5),
                crate::ThreadTag::new(crate::ThreadTypeId::from_raw(0), 0)
            ),
            Err(BuildError::UnknownEvent(_))
        ));
    }

    #[test]
    fn class_and_element_queries() {
        let (s, var, assign, getval) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![]).unwrap();
        let g1 = b.add_event(var, getval, vec![]).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(c.events_of_class(assign).collect::<Vec<_>>(), vec![a1]);
        assert_eq!(c.events_of_class(getval).collect::<Vec<_>>(), vec![g1]);
        assert_eq!(c.event_count(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn minimal_maximal_and_new() {
        let (s, var, assign, _) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![]).unwrap();
        let a2 = b.add_event(var, assign, vec![]).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(c.minimal_events(), vec![a1]);
        assert_eq!(c.maximal_events(), vec![a2]);
        assert!(c.is_new(a2));
        assert!(!c.is_new(a1));
    }

    #[test]
    fn at_control_point() {
        let mut s = Structure::new();
        let req = s.add_class("Req", &[]).unwrap();
        let start = s.add_class("Start", &[]).unwrap();
        let ctl = s.add_element("Control", &[req, start]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let r1 = b.add_event(ctl, req, vec![]).unwrap();
        let r2 = b.add_event(ctl, req, vec![]).unwrap();
        let s1 = b.add_event(ctl, start, vec![]).unwrap();
        b.enable(r1, s1).unwrap();
        let c = b.seal().unwrap();
        // r1 has enabled a Start, so it is no longer "at Start"; r2 is.
        assert!(!c.at_control_point(r1, start));
        assert!(c.at_control_point(r2, start));
    }

    #[test]
    fn duplicate_enable_edges_collapse() {
        let (s, var, assign, _) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![]).unwrap();
        let a2 = b.add_event(var, assign, vec![]).unwrap();
        b.enable(a1, a2).unwrap();
        b.enable(a1, a2).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(c.enabled_from(a1), &[a2]);
        assert_eq!(c.enablers_of(a2), &[a1]);
        assert_eq!(c.enable_edges().count(), 1);
    }

    #[test]
    fn precedence_orders_without_enabling() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p = s.add_element("P", &[act]).unwrap();
        let q = s.add_element("Q", &[act]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, act, vec![]).unwrap();
        let e2 = b.add_event(q, act, vec![]).unwrap();
        b.add_precedence(e1, e2).unwrap();
        let c = b.seal().unwrap();
        assert!(c.temporally_precedes(e1, e2));
        assert!(!c.enables(e1, e2), "precedence is not an enable edge");
        assert!(!c.element_precedes(e1, e2));
        assert!(!c.concurrent(e1, e2));
    }

    #[test]
    fn cyclic_precedence_rejected() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p = s.add_element("P", &[act]).unwrap();
        let q = s.add_element("Q", &[act]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, act, vec![]).unwrap();
        let e2 = b.add_event(q, act, vec![]).unwrap();
        b.enable(e1, e2).unwrap();
        b.add_precedence(e2, e1).unwrap();
        assert!(matches!(b.seal(), Err(BuildError::Cyclic(_))));
        let mut b2 = ComputationBuilder::new(Structure::new());
        assert!(matches!(
            b2.add_precedence(EventId::from_raw(0), EventId::from_raw(1)),
            Err(BuildError::UnknownEvent(_))
        ));
    }

    #[test]
    fn seal_ref_equals_seal() {
        let (s, var, assign, getval) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let g1 = b.add_event(var, getval, vec![Value::Int(1)]).unwrap();
        b.enable(a1, g1).unwrap();
        let by_ref = b.seal_ref().unwrap();
        let owned = b.seal().unwrap();
        assert_eq!(by_ref.events(), owned.events());
        assert_eq!(
            by_ref.enable_edges().collect::<Vec<_>>(),
            owned.enable_edges().collect::<Vec<_>>()
        );
        assert_eq!(by_ref.closure(), owned.closure());
    }

    #[test]
    fn mark_and_truncate_roll_back_growth() {
        let (s, var, assign, getval) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let before = b.seal_ref().unwrap();
        let mark = b.mark();
        let g1 = b.add_event(var, getval, vec![]).unwrap();
        b.enable(a1, g1).unwrap();
        let tag = crate::ThreadTag::new(crate::ThreadTypeId::from_raw(0), 7);
        b.tag_thread(a1, tag).unwrap();
        b.truncate_to(&mark);
        assert_eq!(b.event_count(), 1);
        let after = b.seal_ref().unwrap();
        assert_eq!(after.events(), before.events());
        assert_eq!(after.closure(), before.closure());
        assert!(after.event(a1).threads().is_empty(), "tag rolled back");
        // The builder keeps growing correctly after a rollback.
        let g2 = b.add_event(var, getval, vec![]).unwrap();
        b.enable(a1, g2).unwrap();
        let c = b.seal().unwrap();
        assert!(c.temporally_precedes(a1, g2));
        assert!(c.enables(a1, g2));
        assert_eq!(c.event(g2).seq(), 1);
    }

    #[test]
    fn truncate_handles_retro_edges_via_rebuild() {
        // A post-mark precedence between two *pre-mark* events exercises
        // the rebuild fallback (column masking alone cannot undo it).
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p = s.add_element("P", &[act]).unwrap();
        let q = s.add_element("Q", &[act]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, act, vec![]).unwrap();
        let e2 = b.add_event(q, act, vec![]).unwrap();
        let mark = b.mark();
        b.add_precedence(e1, e2).unwrap();
        assert!(b.seal_ref().unwrap().temporally_precedes(e1, e2));
        b.truncate_to(&mark);
        let c = b.seal_ref().unwrap();
        assert!(c.concurrent(e1, e2), "retro precedence rolled back");
    }

    #[test]
    fn truncate_restores_cycle_state() {
        let (s, var, assign, _) = var_structure();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(var, assign, vec![]).unwrap();
        let mark = b.mark();
        let a2 = b.add_event(var, assign, vec![]).unwrap();
        b.enable(a2, a1).unwrap(); // cycle with the element order
        assert!(matches!(b.seal_ref(), Err(BuildError::Cyclic(_))));
        b.truncate_to(&mark);
        assert!(b.seal_ref().is_ok(), "cycle rolled back with its edges");
        assert_eq!(b.event_count(), 1);
        let _ = a2;
    }

    #[test]
    fn membership_rolls_back() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let el = s.add_element("P", &[act]).unwrap();
        let g = s.add_group("G", &[]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(el, act, vec![]).unwrap();
        let mark = b.mark();
        b.add_membership_event(e1, g, crate::NodeRef::Element(el))
            .unwrap();
        assert_eq!(b.seal_ref().unwrap().memberships().len(), 1);
        b.truncate_to(&mark);
        assert!(b.seal_ref().unwrap().memberships().is_empty());
    }

    fn two_element_structure() -> (Structure, ElementId, ElementId, ClassId) {
        let mut s = Structure::new();
        let step = s.add_class("Step", &["n"]).unwrap();
        let p = s.add_element("P", &[step]).unwrap();
        let q = s.add_element("Q", &[step]).unwrap();
        (s, p, q, step)
    }

    #[test]
    fn fingerprint_is_schedule_independent() {
        let (s, p, q, step) = two_element_structure();
        let s = Arc::new(s);
        let mut b1 = ComputationBuilder::new(Arc::clone(&s));
        let p0 = b1.add_event(p, step, vec![Value::Int(1)]).unwrap();
        let q0 = b1.add_event(q, step, vec![Value::Int(2)]).unwrap();
        let _p1 = b1.add_event(p, step, vec![Value::Int(3)]).unwrap();
        b1.enable(p0, q0).unwrap();
        // Same events and edges, interleaved differently.
        let mut b2 = ComputationBuilder::new(Arc::clone(&s));
        let p0 = b2.add_event(p, step, vec![Value::Int(1)]).unwrap();
        let _p1 = b2.add_event(p, step, vec![Value::Int(3)]).unwrap();
        let q0 = b2.add_event(q, step, vec![Value::Int(2)]).unwrap();
        b2.enable(p0, q0).unwrap();
        assert_eq!(b1.fingerprint(), b2.fingerprint());
        assert_eq!(
            b1.seal().unwrap().fingerprint(),
            b2.seal().unwrap().fingerprint()
        );
    }

    #[test]
    fn fingerprint_ignores_duplicate_edges() {
        let (s, p, q, step) = two_element_structure();
        let s = Arc::new(s);
        let build = |dup: bool| {
            let mut b = ComputationBuilder::new(Arc::clone(&s));
            let p0 = b.add_event(p, step, vec![]).unwrap();
            let q0 = b.add_event(q, step, vec![]).unwrap();
            b.enable(p0, q0).unwrap();
            if dup {
                b.enable(p0, q0).unwrap();
            }
            b.seal().unwrap().fingerprint()
        };
        // Duplicate edges collapse in the sealed computation, so the
        // fingerprint must not see the multiplicity.
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn fingerprint_restored_by_truncate() {
        let (s, p, q, step) = two_element_structure();
        let mut b = ComputationBuilder::new(s);
        let p0 = b.add_event(p, step, vec![Value::Int(1)]).unwrap();
        let before = b.fingerprint();
        let mark = b.mark();
        let q0 = b.add_event(q, step, vec![Value::Int(2)]).unwrap();
        b.enable(p0, q0).unwrap();
        b.add_precedence(p0, q0).unwrap();
        b.tag_thread(
            p0,
            crate::ThreadTag::new(crate::ThreadTypeId::from_raw(0), 1),
        )
        .unwrap();
        assert_ne!(b.fingerprint(), before);
        b.truncate_to(&mark);
        assert_eq!(b.fingerprint(), before);
        // Regrowing the same suffix reproduces the same fingerprint.
        let q0 = b.add_event(q, step, vec![Value::Int(2)]).unwrap();
        b.enable(p0, q0).unwrap();
        let fp1 = b.fingerprint();
        let mark2 = b.mark();
        b.truncate_to(&mark2);
        assert_eq!(b.fingerprint(), fp1);
    }

    #[test]
    fn fingerprint_separates_data_edges_and_tags() {
        let (s, p, q, step) = two_element_structure();
        let s = Arc::new(s);
        let build = |param: i64, edge: bool, prec: bool, tag: bool| {
            let mut b = ComputationBuilder::new(Arc::clone(&s));
            let p0 = b.add_event(p, step, vec![Value::Int(param)]).unwrap();
            let q0 = b.add_event(q, step, vec![Value::Int(0)]).unwrap();
            if edge {
                b.enable(p0, q0).unwrap();
            }
            if prec {
                b.add_precedence(p0, q0).unwrap();
            }
            if tag {
                b.tag_thread(
                    p0,
                    crate::ThreadTag::new(crate::ThreadTypeId::from_raw(0), 1),
                )
                .unwrap();
            }
            b.seal().unwrap().fingerprint()
        };
        let base = build(1, false, false, false);
        assert_ne!(base, build(2, false, false, false), "params");
        assert_ne!(base, build(1, true, false, false), "enables");
        assert_ne!(base, build(1, false, true, false), "precedences");
        assert_ne!(base, build(1, false, false, true), "thread tags");
        assert_ne!(
            build(1, true, false, false),
            build(1, false, true, false),
            "enable vs precedence over the same endpoints"
        );
    }

    #[test]
    fn retagged_adjusts_fingerprint() {
        let (s, p, _, step) = two_element_structure();
        let mut b = ComputationBuilder::new(s);
        let p0 = b.add_event(p, step, vec![]).unwrap();
        let tag = crate::ThreadTag::new(crate::ThreadTypeId::from_raw(0), 3);
        let untagged = b.seal_ref().unwrap();
        b.tag_thread(p0, tag).unwrap();
        let tagged = b.seal().unwrap();
        assert_ne!(untagged.fingerprint(), tagged.fingerprint());
        // Retagging to the same tag set reproduces the built fingerprint;
        // stripping the tags recovers the untagged one.
        assert_eq!(
            untagged.retagged(|_| vec![tag]).fingerprint(),
            tagged.fingerprint()
        );
        assert_eq!(
            tagged.retagged(|_| Vec::new()).fingerprint(),
            untagged.fingerprint()
        );
    }

    #[test]
    fn precedence_edges_exposed_and_deduplicated() {
        let (s, p, q, step) = two_element_structure();
        let mut b = ComputationBuilder::new(s);
        let p0 = b.add_event(p, step, vec![]).unwrap();
        let q0 = b.add_event(q, step, vec![]).unwrap();
        b.add_precedence(p0, q0).unwrap();
        b.add_precedence(p0, q0).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(c.precedence_edges(), &[(p0, q0)]);
    }

    #[test]
    fn empty_computation() {
        let (s, _, _, _) = var_structure();
        let c = Computation::empty(s);
        assert!(c.is_empty());
        assert_eq!(c.event_count(), 0);
        assert!(c.minimal_events().is_empty());
    }
}
