//! Static structure of a GEM specification: event classes, elements,
//! groups, ports, and the scope (access) rules they induce.
//!
//! Elements model loci of forced sequential activity (§4): every event
//! occurs at exactly one element, and all events at an element are totally
//! ordered. Groups cluster elements and other groups, modelling scope; an
//! enable edge from an event at `EL1` to an event at `EL2` is legal only if
//! `EL1` has *access* to `EL2`, or the target event is a *port* of a group
//! `EL1` has access to (footnote 4 of the paper):
//!
//! ```text
//! access(x, y)      ≡ ∃G [ y ∈ G ∧ contained(x, G) ]
//! contained(x, G)   ≡ x ∈ G ∨ ∃G' [ x ∈ G' ∧ contained(G', G) ]
//! ```
//!
//! where `∈` is *direct* membership and all top-level items are members of
//! an implicit surrounding root group. Groups may be disjoint, hierarchical,
//! or overlapping (an element may belong to several groups, as `EL3`/`EL4`
//! do in the paper's §4 example).

use std::collections::HashMap;
use std::fmt;

use crate::{ClassId, ElementId, GroupId};

/// A member of a group: either an element or a nested group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeRef {
    /// An element member.
    Element(ElementId),
    /// A nested group member.
    Group(GroupId),
}

impl From<ElementId> for NodeRef {
    fn from(id: ElementId) -> Self {
        NodeRef::Element(id)
    }
}

impl From<GroupId> for NodeRef {
    fn from(id: GroupId) -> Self {
        NodeRef::Group(id)
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Element(e) => write!(f, "{e}"),
            NodeRef::Group(g) => write!(f, "{g}"),
        }
    }
}

/// Description of an event class: its name and parameter names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassInfo {
    name: String,
    params: Vec<String>,
}

impl ClassInfo {
    /// The class name, e.g. `"Assign"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared parameter names, in positional order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Number of parameters events of this class carry.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Position of the parameter called `name`, if declared.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }
}

/// Description of an element: its name and the event classes that may
/// occur at it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElementInfo {
    name: String,
    classes: Vec<ClassId>,
}

impl ElementInfo {
    /// The element name, e.g. `"Var"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Event classes that may occur at this element.
    pub fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    /// True if events of `class` may occur at this element.
    pub fn allows(&self, class: ClassId) -> bool {
        self.classes.contains(&class)
    }
}

/// Description of a group: name, direct members, and port event classes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupInfo {
    name: String,
    members: Vec<NodeRef>,
    ports: Vec<(ElementId, ClassId)>,
}

impl GroupInfo {
    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direct members (elements and nested groups).
    pub fn members(&self) -> &[NodeRef] {
        &self.members
    }

    /// Port designations: events of `ClassId` at `ElementId` are access
    /// holes into this group.
    pub fn ports(&self) -> &[(ElementId, ClassId)] {
        &self.ports
    }

    /// True if `node` is a *direct* member of this group.
    pub fn has_member(&self, node: NodeRef) -> bool {
        self.members.contains(&node)
    }

    /// True if events of `class` at `element` are ports of this group.
    pub fn has_port(&self, element: ElementId, class: ClassId) -> bool {
        self.ports.contains(&(element, class))
    }
}

/// Errors arising while declaring a [`Structure`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StructureError {
    /// A class was redeclared with different parameters.
    ClassConflict(String),
    /// An element or group name was declared twice.
    DuplicateName(String),
    /// A referenced id does not exist in this structure.
    UnknownId(String),
    /// Adding a membership edge would make `contained` cyclic.
    CyclicGroups(String),
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::ClassConflict(n) => {
                write!(f, "event class {n:?} redeclared with different parameters")
            }
            StructureError::DuplicateName(n) => write!(f, "name {n:?} declared twice"),
            StructureError::UnknownId(n) => write!(f, "unknown id {n}"),
            StructureError::CyclicGroups(n) => {
                write!(f, "group membership cycle involving {n}")
            }
        }
    }
}

impl std::error::Error for StructureError {}

/// The static structure of a GEM specification: classes, elements, groups,
/// ports, and the access relation between them.
///
/// A `Structure` is built once (usually by the `gem-spec` instantiation
/// layer or by a language substrate) and then shared by every computation
/// over it.
///
/// # Examples
///
/// Modelling the paper's §4 example of three processes sharing a resource:
///
/// ```
/// use gem_core::Structure;
/// let mut s = Structure::new();
/// let touch = s.add_class("Touch", &[]).unwrap();
/// let els: Vec<_> = (1..=6)
///     .map(|i| s.add_element(format!("EL{i}"), &[touch]).unwrap())
///     .collect();
/// let _g1 = s.add_group("G1", &[els[1].into(), els[2].into()]).unwrap();
/// let _g2 = s.add_group("G2", &[els[3].into(), els[4].into()]).unwrap();
/// let _g3 = s.add_group("G3", &[els[2].into(), els[3].into()]).unwrap();
/// let _g4 = s.add_group("G4", &[els[0].into()]).unwrap();
/// // EL2 may enable EL3 (same group G1), and anything may enable EL6 (global):
/// assert!(s.access(els[1], els[2].into()));
/// assert!(s.access(els[1], els[5].into()));
/// // ... but EL1 may not enable EL2:
/// assert!(!s.access(els[0], els[1].into()));
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Structure {
    classes: Vec<ClassInfo>,
    elements: Vec<ElementInfo>,
    groups: Vec<GroupInfo>,
    class_by_name: HashMap<String, ClassId>,
    element_by_name: HashMap<String, ElementId>,
    group_by_name: HashMap<String, GroupId>,
    /// Direct parents of each element (groups it is a direct member of).
    element_parents: Vec<Vec<GroupId>>,
    /// Direct parents of each group.
    group_parents: Vec<Vec<GroupId>>,
}

impl Structure {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-uses) an event class.
    ///
    /// Classes are global and identified by name; redeclaring a class with
    /// the same parameter list returns the existing id.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::ClassConflict`] if the class exists with a
    /// different parameter list.
    pub fn add_class(
        &mut self,
        name: impl Into<String>,
        params: &[&str],
    ) -> Result<ClassId, StructureError> {
        let name = name.into();
        if let Some(&id) = self.class_by_name.get(&name) {
            let existing = &self.classes[id.index()];
            if existing.params.len() == params.len()
                && existing.params.iter().zip(params).all(|(a, b)| a == b)
            {
                return Ok(id);
            }
            return Err(StructureError::ClassConflict(name));
        }
        let id = ClassId::from_raw(self.classes.len() as u32);
        self.classes.push(ClassInfo {
            name: name.clone(),
            params: params.iter().map(|s| (*s).to_owned()).collect(),
        });
        self.class_by_name.insert(name, id);
        Ok(id)
    }

    /// Declares an element allowing the given event classes.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::DuplicateName`] if an element with this
    /// name exists.
    pub fn add_element(
        &mut self,
        name: impl Into<String>,
        classes: &[ClassId],
    ) -> Result<ElementId, StructureError> {
        let name = name.into();
        if self.element_by_name.contains_key(&name) {
            return Err(StructureError::DuplicateName(name));
        }
        let id = ElementId::from_raw(self.elements.len() as u32);
        self.elements.push(ElementInfo {
            name: name.clone(),
            classes: classes.to_vec(),
        });
        self.element_by_name.insert(name, id);
        self.element_parents.push(Vec::new());
        Ok(id)
    }

    /// Adds an additional allowed class to an existing element.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::UnknownId`] if `element` or `class` is not
    /// from this structure.
    pub fn allow_class(
        &mut self,
        element: ElementId,
        class: ClassId,
    ) -> Result<(), StructureError> {
        if class.index() >= self.classes.len() {
            return Err(StructureError::UnknownId(class.to_string()));
        }
        let info = self
            .elements
            .get_mut(element.index())
            .ok_or_else(|| StructureError::UnknownId(element.to_string()))?;
        if !info.classes.contains(&class) {
            info.classes.push(class);
        }
        Ok(())
    }

    /// Declares a group with the given direct members.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::DuplicateName`] for a repeated name,
    /// [`StructureError::UnknownId`] for an unknown member, and
    /// [`StructureError::CyclicGroups`] if membership would become cyclic.
    pub fn add_group(
        &mut self,
        name: impl Into<String>,
        members: &[NodeRef],
    ) -> Result<GroupId, StructureError> {
        let name = name.into();
        if self.group_by_name.contains_key(&name) {
            return Err(StructureError::DuplicateName(name));
        }
        let id = GroupId::from_raw(self.groups.len() as u32);
        self.groups.push(GroupInfo {
            name: name.clone(),
            members: Vec::new(),
            ports: Vec::new(),
        });
        self.group_by_name.insert(name, id);
        self.group_parents.push(Vec::new());
        for &m in members {
            self.add_member(id, m)?;
        }
        Ok(id)
    }

    /// Adds `member` as a direct member of `group`.
    ///
    /// Groups grow monotonically (§5 footnote: group structure changes are
    /// themselves events; this reproduction keeps structures static per
    /// computation, but members may be added while building).
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::UnknownId`] for unknown ids and
    /// [`StructureError::CyclicGroups`] if the edge closes a membership
    /// cycle.
    pub fn add_member(&mut self, group: GroupId, member: NodeRef) -> Result<(), StructureError> {
        if group.index() >= self.groups.len() {
            return Err(StructureError::UnknownId(group.to_string()));
        }
        match member {
            NodeRef::Element(e) => {
                if e.index() >= self.elements.len() {
                    return Err(StructureError::UnknownId(e.to_string()));
                }
                if !self.groups[group.index()].members.contains(&member) {
                    self.groups[group.index()].members.push(member);
                    self.element_parents[e.index()].push(group);
                }
            }
            NodeRef::Group(g) => {
                if g.index() >= self.groups.len() {
                    return Err(StructureError::UnknownId(g.to_string()));
                }
                if g == group || self.group_contained_in(group, g) {
                    return Err(StructureError::CyclicGroups(g.to_string()));
                }
                if !self.groups[group.index()].members.contains(&member) {
                    self.groups[group.index()].members.push(member);
                    self.group_parents[g.index()].push(group);
                }
            }
        }
        Ok(())
    }

    /// Designates events of `class` at `element` as ports of `group`.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::UnknownId`] for ids not from this
    /// structure.
    pub fn add_port(
        &mut self,
        group: GroupId,
        element: ElementId,
        class: ClassId,
    ) -> Result<(), StructureError> {
        if element.index() >= self.elements.len() {
            return Err(StructureError::UnknownId(element.to_string()));
        }
        if class.index() >= self.classes.len() {
            return Err(StructureError::UnknownId(class.to_string()));
        }
        let info = self
            .groups
            .get_mut(group.index())
            .ok_or_else(|| StructureError::UnknownId(group.to_string()))?;
        if !info.ports.contains(&(element, class)) {
            info.ports.push((element, class));
        }
        Ok(())
    }

    /// Number of declared event classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of declared elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of declared groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<ElementId> {
        self.element_by_name.get(name).copied()
    }

    /// Looks up a group by name.
    pub fn group(&self, name: &str) -> Option<GroupId> {
        self.group_by_name.get(name).copied()
    }

    /// Class description for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this structure.
    pub fn class_info(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.index()]
    }

    /// Element description for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this structure.
    pub fn element_info(&self, id: ElementId) -> &ElementInfo {
        &self.elements[id.index()]
    }

    /// Group description for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this structure.
    pub fn group_info(&self, id: GroupId) -> &GroupInfo {
        &self.groups[id.index()]
    }

    /// Iterates over all element ids.
    pub fn elements(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.elements.len()).map(|i| ElementId::from_raw(i as u32))
    }

    /// Iterates over all group ids.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        (0..self.groups.len()).map(|i| GroupId::from_raw(i as u32))
    }

    /// Iterates over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(|i| ClassId::from_raw(i as u32))
    }

    /// Direct parent groups of `node`.
    pub fn parents(&self, node: NodeRef) -> &[GroupId] {
        match node {
            NodeRef::Element(e) => &self.element_parents[e.index()],
            NodeRef::Group(g) => &self.group_parents[g.index()],
        }
    }

    /// True if `node` is a direct member of no group (hence a member of the
    /// implicit surrounding root group — "global").
    pub fn is_top_level(&self, node: NodeRef) -> bool {
        self.parents(node).is_empty()
    }

    fn group_contained_in(&self, inner: GroupId, outer: GroupId) -> bool {
        if inner == outer {
            return true;
        }
        self.group_parents[inner.index()]
            .iter()
            .any(|&p| self.group_contained_in(p, outer))
    }

    /// The paper's `contained(x, G)`: `x ∈ G` directly, or `x` is a direct
    /// member of some group `G'` with `contained(G', G)`.
    pub fn contained(&self, node: NodeRef, group: GroupId) -> bool {
        self.parents(node)
            .iter()
            .any(|&p| p == group || self.group_contained_in(p, group))
    }

    /// The paper's `access(x, y)`: there is a group `G` (including the
    /// implicit root) such that `y ∈ G` and `contained(x, G)`.
    ///
    /// Because everything is contained in the implicit root, a top-level
    /// `y` is accessible from every `x` ("y is global to x").
    pub fn access(&self, from: ElementId, to: NodeRef) -> bool {
        if self.is_top_level(to) {
            return true;
        }
        self.parents(to)
            .iter()
            .any(|&g| self.contained(NodeRef::Element(from), g))
    }

    /// True if an event at `from` may enable an event of `to_class` at
    /// `to_element` under the group scope rules (footnote 4):
    /// `access(EL1, EL2) ∨ ∃G [ e2 is a port of G ∧ access(EL1, G) ]`.
    pub fn may_enable(&self, from: ElementId, to_element: ElementId, to_class: ClassId) -> bool {
        if self.access(from, NodeRef::Element(to_element)) {
            return true;
        }
        self.groups().any(|g| {
            self.group_info(g).has_port(to_element, to_class)
                && (self.is_top_level(NodeRef::Group(g))
                    || self
                        .parents(NodeRef::Group(g))
                        .iter()
                        .any(|&pg| self.contained(NodeRef::Element(from), pg)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> (Structure, Vec<ElementId>) {
        let mut s = Structure::new();
        let touch = s.add_class("Touch", &[]).unwrap();
        let els: Vec<_> = (1..=6)
            .map(|i| s.add_element(format!("EL{i}"), &[touch]).unwrap())
            .collect();
        s.add_group("G1", &[els[1].into(), els[2].into()]).unwrap();
        s.add_group("G2", &[els[3].into(), els[4].into()]).unwrap();
        s.add_group("G3", &[els[2].into(), els[3].into()]).unwrap();
        s.add_group("G4", &[els[0].into()]).unwrap();
        (s, els)
    }

    /// Reproduces the full allowed-communication table of §4.
    #[test]
    fn section4_access_table() {
        let (s, els) = paper_example();
        // May-enable table from the paper, 1-indexed: EL1→{1,6}, EL2→{2,3,6},
        // EL3→{2,3,4,6}, EL4→{3,4,5,6}, EL5→{4,5,6}, EL6→{6}.
        let table: [&[usize]; 6] = [
            &[1, 6],
            &[2, 3, 6],
            &[2, 3, 4, 6],
            &[3, 4, 5, 6],
            &[4, 5, 6],
            &[6],
        ];
        for (i, allowed) in table.iter().enumerate() {
            for j in 1..=6 {
                let expect = allowed.contains(&j);
                assert_eq!(
                    s.access(els[i], els[j - 1].into()),
                    expect,
                    "access(EL{}, EL{j}) should be {expect}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn ports_open_access_holes() {
        // Abstraction = GROUP(Datum, Oper) PORTS(Oper.Start)
        let mut s = Structure::new();
        let start = s.add_class("Start", &[]).unwrap();
        let read = s.add_class("Read", &[]).unwrap();
        let datum = s.add_element("Datum", &[read]).unwrap();
        let oper = s.add_element("Oper", &[start, read]).unwrap();
        let outside = s.add_element("Client", &[start]).unwrap();
        let abstraction = s
            .add_group("Abstraction", &[datum.into(), oper.into()])
            .unwrap();
        s.add_port(abstraction, oper, start).unwrap();

        // Client may enable the port event but not internal events.
        assert!(s.may_enable(outside, oper, start));
        assert!(!s.may_enable(outside, oper, read));
        assert!(!s.may_enable(outside, datum, read));
        // Internal elements access each other freely.
        assert!(s.may_enable(oper, datum, read));
        assert!(s.may_enable(datum, oper, read));
    }

    #[test]
    fn nested_groups_and_containment() {
        let mut s = Structure::new();
        let c = s.add_class("C", &[]).unwrap();
        let inner_el = s.add_element("Inner", &[c]).unwrap();
        let outer_el = s.add_element("Outer", &[c]).unwrap();
        let inner = s.add_group("GInner", &[inner_el.into()]).unwrap();
        let outer = s
            .add_group("GOuter", &[NodeRef::Group(inner), outer_el.into()])
            .unwrap();
        assert!(s.contained(NodeRef::Element(inner_el), inner));
        assert!(s.contained(NodeRef::Element(inner_el), outer));
        assert!(s.contained(NodeRef::Group(inner), outer));
        assert!(!s.contained(NodeRef::Element(outer_el), inner));
        // Outer element cannot reach inside the inner group...
        assert!(!s.access(outer_el, inner_el.into()));
        // ...but the inner element can reach its sibling via GOuter.
        assert!(s.access(inner_el, outer_el.into()));
    }

    #[test]
    fn top_level_is_global() {
        let (s, els) = paper_example();
        // EL6 is top-level: everyone accesses it; it accesses only itself
        // among grouped elements.
        for e in &els {
            assert!(s.access(*e, els[5].into()));
        }
        assert!(!s.access(els[5], els[0].into()));
        assert!(s.access(els[5], els[5].into()));
    }

    #[test]
    fn class_reuse_and_conflict() {
        let mut s = Structure::new();
        let a = s.add_class("Assign", &["newval"]).unwrap();
        let a2 = s.add_class("Assign", &["newval"]).unwrap();
        assert_eq!(a, a2);
        assert!(matches!(
            s.add_class("Assign", &["other"]),
            Err(StructureError::ClassConflict(_))
        ));
    }

    #[test]
    fn duplicate_element_name_rejected() {
        let mut s = Structure::new();
        s.add_element("Var", &[]).unwrap();
        assert!(matches!(
            s.add_element("Var", &[]),
            Err(StructureError::DuplicateName(_))
        ));
    }

    #[test]
    fn group_cycles_rejected() {
        let mut s = Structure::new();
        let g1 = s.add_group("A", &[]).unwrap();
        let g2 = s.add_group("B", &[NodeRef::Group(g1)]).unwrap();
        assert!(matches!(
            s.add_member(g1, NodeRef::Group(g2)),
            Err(StructureError::CyclicGroups(_))
        ));
        assert!(matches!(
            s.add_member(g1, NodeRef::Group(g1)),
            Err(StructureError::CyclicGroups(_))
        ));
    }

    #[test]
    fn allow_class_extends_element() {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let b = s.add_class("B", &[]).unwrap();
        let el = s.add_element("E", &[a]).unwrap();
        assert!(!s.element_info(el).allows(b));
        s.allow_class(el, b).unwrap();
        assert!(s.element_info(el).allows(b));
        // Idempotent.
        s.allow_class(el, b).unwrap();
        assert_eq!(s.element_info(el).classes().len(), 2);
    }

    #[test]
    fn unknown_ids_rejected_by_mutators() {
        let mut s = Structure::new();
        let c = s.add_class("C", &[]).unwrap();
        let el = s.add_element("E", &[c]).unwrap();
        let g = s.add_group("G", &[]).unwrap();
        assert!(matches!(
            s.allow_class(ElementId::from_raw(9), c),
            Err(StructureError::UnknownId(_))
        ));
        assert!(matches!(
            s.allow_class(el, ClassId::from_raw(9)),
            Err(StructureError::UnknownId(_))
        ));
        assert!(matches!(
            s.add_member(GroupId::from_raw(9), el.into()),
            Err(StructureError::UnknownId(_))
        ));
        assert!(matches!(
            s.add_member(g, ElementId::from_raw(9).into()),
            Err(StructureError::UnknownId(_))
        ));
        assert!(matches!(
            s.add_port(g, ElementId::from_raw(9), c),
            Err(StructureError::UnknownId(_))
        ));
        assert!(matches!(
            s.add_port(g, el, ClassId::from_raw(9)),
            Err(StructureError::UnknownId(_))
        ));
        assert!(matches!(
            s.add_port(GroupId::from_raw(9), el, c),
            Err(StructureError::UnknownId(_))
        ));
        // Error display is meaningful.
        assert!(StructureError::UnknownId("EL9".into())
            .to_string()
            .contains("unknown id"));
    }

    #[test]
    fn duplicate_membership_and_port_idempotent() {
        let mut s = Structure::new();
        let c = s.add_class("C", &[]).unwrap();
        let el = s.add_element("E", &[c]).unwrap();
        let g = s.add_group("G", &[el.into()]).unwrap();
        s.add_member(g, el.into()).unwrap();
        assert_eq!(s.group_info(g).members().len(), 1);
        s.add_port(g, el, c).unwrap();
        s.add_port(g, el, c).unwrap();
        assert_eq!(s.group_info(g).ports().len(), 1);
    }

    #[test]
    fn lookups_by_name() {
        let (s, els) = paper_example();
        assert_eq!(s.element("EL1"), Some(els[0]));
        assert_eq!(s.element("ELx"), None);
        assert!(s.group("G3").is_some());
        assert!(s.class("Touch").is_some());
        assert_eq!(s.element_count(), 6);
        assert_eq!(s.group_count(), 4);
        assert_eq!(s.class_count(), 1);
    }

    #[test]
    fn class_param_lookup() {
        let mut s = Structure::new();
        let a = s.add_class("Assign", &["loc", "newval"]).unwrap();
        let info = s.class_info(a);
        assert_eq!(info.arity(), 2);
        assert_eq!(info.param_index("newval"), Some(1));
        assert_eq!(info.param_index("missing"), None);
        assert_eq!(info.name(), "Assign");
    }

    #[test]
    fn overlapping_groups_allowed() {
        let (s, els) = paper_example();
        // EL3 belongs to both G1 and G3.
        let el3 = NodeRef::Element(els[2]);
        assert_eq!(s.parents(el3).len(), 2);
    }
}
