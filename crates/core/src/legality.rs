//! GEM legality restrictions (§3, §4): the properties every legal
//! computation must satisfy regardless of specification.
//!
//! Some legality properties are enforced by construction in this
//! reproduction — every event belongs to exactly one element
//! (the builder requires an element per event), the element order is total
//! per element (occurrence numbering), and the temporal order is the
//! transitive closure of enable ∪ element order, irreflexive by the
//! acyclicity check at [`seal`](crate::ComputationBuilder::seal). The
//! remaining checks live here:
//!
//! * every event's class is among the classes its element declares,
//! * every event's parameter list matches its class's arity,
//! * every enable edge respects the group scope rules (`access`/ports).

use std::fmt;

use crate::{ClassId, Computation, ElementId, EventId};

/// A single legality violation found in a computation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// An event's class is not declared at its element.
    ClassNotAllowed {
        /// The offending event.
        event: EventId,
        /// The element the event occurred at.
        element: ElementId,
        /// The undeclared class.
        class: ClassId,
    },
    /// An event's parameter count does not match its class declaration.
    ArityMismatch {
        /// The offending event.
        event: EventId,
        /// Arity the class declares.
        expected: usize,
        /// Arity the event carries.
        actual: usize,
    },
    /// An enable edge crosses a group firewall (footnote 4's rule fails).
    AccessViolation {
        /// Source of the enable edge.
        from: EventId,
        /// Target of the enable edge.
        to: EventId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ClassNotAllowed {
                event,
                element,
                class,
            } => write!(f, "event {event}: class {class} not declared at {element}"),
            Violation::ArityMismatch {
                event,
                expected,
                actual,
            } => write!(
                f,
                "event {event}: expected {expected} parameters, found {actual}"
            ),
            Violation::AccessViolation { from, to } => {
                write!(f, "enable edge {from} -> {to} violates group access rules")
            }
        }
    }
}

impl Violation {
    /// A human-readable description using names from the computation's
    /// structure.
    pub fn describe(&self, c: &Computation) -> String {
        let s = c.structure();
        match self {
            Violation::ClassNotAllowed {
                event,
                element,
                class,
            } => format!(
                "event {event}: class {:?} is not declared at element {:?}",
                s.class_info(*class).name(),
                s.element_info(*element).name()
            ),
            Violation::ArityMismatch {
                event,
                expected,
                actual,
            } => {
                let ev = c.event(*event);
                format!(
                    "event {event} ({}.{}): class declares {expected} parameters, event carries {actual}",
                    s.element_info(ev.element()).name(),
                    s.class_info(ev.class()).name()
                )
            }
            Violation::AccessViolation { from, to } => {
                let (ef, et) = (c.event(*from), c.event(*to));
                format!(
                    "enable edge {}.{} -> {}.{} violates group access rules",
                    s.element_info(ef.element()).name(),
                    s.class_info(ef.class()).name(),
                    s.element_info(et.element()).name(),
                    s.class_info(et.class()).name()
                )
            }
        }
    }
}

/// Checks the non-structural legality restrictions of a computation,
/// returning every violation found (empty means legal).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{check_legality, ComputationBuilder, Structure};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let el = s.add_element("P", &[act])?;
/// let mut b = ComputationBuilder::new(s);
/// b.add_event(el, act, vec![])?;
/// let c = b.seal()?;
/// assert!(check_legality(&c).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn check_legality(c: &Computation) -> Vec<Violation> {
    let s = c.structure();
    let mut violations = Vec::new();
    for ev in c.events() {
        if !s.element_info(ev.element()).allows(ev.class()) {
            violations.push(Violation::ClassNotAllowed {
                event: ev.id(),
                element: ev.element(),
                class: ev.class(),
            });
        }
        let expected = s.class_info(ev.class()).arity();
        if ev.params().len() != expected {
            violations.push(Violation::ArityMismatch {
                event: ev.id(),
                expected,
                actual: ev.params().len(),
            });
        }
    }
    let dynamic = !c.memberships().is_empty();
    for (from, to) in c.enable_edges() {
        let (ef, et) = (c.event(from), c.event(to));
        let allowed = if dynamic {
            // Dynamic group structures (§5): the access rules in force for
            // an edge are those established by membership events that
            // temporally precede its source.
            c.structure_at(from)
                .may_enable(ef.element(), et.element(), et.class())
        } else {
            s.may_enable(ef.element(), et.element(), et.class())
        };
        if !allowed {
            violations.push(Violation::AccessViolation { from, to });
        }
    }
    violations
}

/// True if [`check_legality`] finds no violation.
pub fn is_legal(c: &Computation) -> bool {
    check_legality(c).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputationBuilder, Structure, Value};

    #[test]
    fn legal_computation_passes() {
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &["newval"]).unwrap();
        let var = s.add_element("Var", &[assign]).unwrap();
        let mut b = ComputationBuilder::new(s);
        b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let c = b.seal().unwrap();
        assert!(is_legal(&c));
    }

    #[test]
    fn undeclared_class_flagged() {
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &[]).unwrap();
        let getval = s.add_class("Getval", &[]).unwrap();
        let var = s.add_element("Var", &[assign]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e = b.add_event(var, getval, vec![]).unwrap();
        let c = b.seal().unwrap();
        let vs = check_legality(&c);
        assert_eq!(vs.len(), 1);
        assert!(matches!(
            vs[0],
            Violation::ClassNotAllowed { event, .. } if event == e
        ));
        assert!(vs[0].describe(&c).contains("Getval"));
    }

    #[test]
    fn arity_mismatch_flagged() {
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &["newval"]).unwrap();
        let var = s.add_element("Var", &[assign]).unwrap();
        let mut b = ComputationBuilder::new(s);
        b.add_event(var, assign, vec![]).unwrap();
        let c = b.seal().unwrap();
        let vs = check_legality(&c);
        assert_eq!(vs.len(), 1);
        assert!(matches!(
            vs[0],
            Violation::ArityMismatch {
                expected: 1,
                actual: 0,
                ..
            }
        ));
    }

    #[test]
    fn firewall_enable_flagged() {
        // Two disjoint process groups; a direct enable between them is
        // illegal.
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p1 = s.add_element("P1", &[act]).unwrap();
        let p2 = s.add_element("P2", &[act]).unwrap();
        s.add_group("G1", &[p1.into()]).unwrap();
        s.add_group("G2", &[p2.into()]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p1, act, vec![]).unwrap();
        let e2 = b.add_event(p2, act, vec![]).unwrap();
        b.enable(e1, e2).unwrap();
        let c = b.seal().unwrap();
        let vs = check_legality(&c);
        assert_eq!(vs.len(), 1);
        assert!(matches!(vs[0], Violation::AccessViolation { .. }));
        assert!(vs[0].describe(&c).contains("P1"));
    }

    #[test]
    fn port_enable_allowed() {
        let mut s = Structure::new();
        let start = s.add_class("Start", &[]).unwrap();
        let inner = s.add_class("Inner", &[]).unwrap();
        let oper = s.add_element("Oper", &[start, inner]).unwrap();
        let client = s.add_element("Client", &[start]).unwrap();
        let g = s.add_group("Abstraction", &[oper.into()]).unwrap();
        s.add_port(g, oper, start).unwrap();
        let mut b = ComputationBuilder::new(s);
        let call = b.add_event(client, start, vec![]).unwrap();
        let entry = b.add_event(oper, start, vec![]).unwrap();
        let hidden = b.add_event(oper, inner, vec![]).unwrap();
        b.enable(call, entry).unwrap();
        b.enable(entry, hidden).unwrap();
        let c = b.seal().unwrap();
        assert!(is_legal(&c), "{:?}", check_legality(&c));
    }

    #[test]
    fn non_port_enable_into_group_flagged() {
        let mut s = Structure::new();
        let start = s.add_class("Start", &[]).unwrap();
        let inner = s.add_class("Inner", &[]).unwrap();
        let oper = s.add_element("Oper", &[start, inner]).unwrap();
        let client = s.add_element("Client", &[start]).unwrap();
        let g = s.add_group("Abstraction", &[oper.into()]).unwrap();
        s.add_port(g, oper, start).unwrap();
        let mut b = ComputationBuilder::new(s);
        let call = b.add_event(client, start, vec![]).unwrap();
        let hidden = b.add_event(oper, inner, vec![]).unwrap();
        b.enable(call, hidden).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(check_legality(&c).len(), 1);
    }

    /// Dynamic group structures (§5): a channel group is created at run
    /// time by a membership event; communication across the firewall is
    /// illegal before it and legal after it.
    #[test]
    fn dynamic_membership_opens_access() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let spawn = s.add_class("Spawn", &[]).unwrap();
        let p1 = s.add_element("P1", &[act, spawn]).unwrap();
        let p2 = s.add_element("P2", &[act]).unwrap();
        let g1 = s.add_group("G1", &[p1.into()]).unwrap();
        s.add_group("G2", &[p2.into()]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p1, spawn, vec![]).unwrap();
        let e2 = b.add_event(p1, act, vec![]).unwrap();
        let e3 = b.add_event(p2, act, vec![]).unwrap();
        b.enable(e1, e2).unwrap();
        b.enable(e2, e3).unwrap(); // crosses G1 → G2
                                   // The spawn event admits P2 into G1: from e1 onwards, P1 and P2
                                   // share a group, so e2 ⊳ e3 is legal.
        b.add_membership_event(e1, g1, p2.into()).unwrap();
        let c = b.seal().unwrap();
        assert!(is_legal(&c), "{:?}", check_legality(&c));
    }

    #[test]
    fn membership_not_in_force_before_its_event() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p1 = s.add_element("P1", &[act]).unwrap();
        let p2 = s.add_element("P2", &[act]).unwrap();
        let g1 = s.add_group("G1", &[p1.into()]).unwrap();
        s.add_group("G2", &[p2.into()]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let cross = b.add_event(p1, act, vec![]).unwrap();
        let target = b.add_event(p2, act, vec![]).unwrap();
        let later = b.add_event(p1, act, vec![]).unwrap();
        b.enable(cross, target).unwrap();
        // The membership event comes temporally AFTER the crossing edge's
        // source, so it does not legalize it.
        b.add_membership_event(later, g1, p2.into()).unwrap();
        let c = b.seal().unwrap();
        let vs = check_legality(&c);
        assert_eq!(vs.len(), 1);
        assert!(matches!(vs[0], Violation::AccessViolation { .. }));
    }

    #[test]
    fn membership_concurrent_with_source_not_in_force() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p1 = s.add_element("P1", &[act]).unwrap();
        let p2 = s.add_element("P2", &[act]).unwrap();
        let p3 = s.add_element("P3", &[act]).unwrap();
        let g1 = s.add_group("G1", &[p1.into()]).unwrap();
        s.add_group("G2", &[p2.into()]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let cross = b.add_event(p1, act, vec![]).unwrap();
        let target = b.add_event(p2, act, vec![]).unwrap();
        // A concurrent third-party event carries the membership change.
        let unrelated = b.add_event(p3, act, vec![]).unwrap();
        b.enable(cross, target).unwrap();
        b.add_membership_event(unrelated, g1, p2.into()).unwrap();
        let c = b.seal().unwrap();
        assert!(c.concurrent(cross, unrelated));
        assert_eq!(
            check_legality(&c).len(),
            1,
            "no observable order, no access"
        );
    }

    #[test]
    fn structure_at_grows_monotonically() {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p1 = s.add_element("P1", &[act]).unwrap();
        let p2 = s.add_element("P2", &[act]).unwrap();
        let g1 = s.add_group("G1", &[p1.into()]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p1, act, vec![]).unwrap();
        let e2 = b.add_event(p1, act, vec![]).unwrap();
        b.add_membership_event(e1, g1, p2.into()).unwrap();
        let c = b.seal().unwrap();
        assert_eq!(c.memberships().len(), 1);
        // Before/at e1: membership applies at e1 itself and at e2.
        assert!(c.structure_at(e1).group_info(g1).has_member(p2.into()));
        assert!(c.structure_at(e2).group_info(g1).has_member(p2.into()));
        // The static structure is untouched.
        assert!(!c.structure().group_info(g1).has_member(p2.into()));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let mut s = Structure::new();
        let a = s.add_class("A", &["p"]).unwrap();
        let b_cls = s.add_class("B", &[]).unwrap();
        let el = s.add_element("E", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        b.add_event(el, b_cls, vec![Value::Int(0)]).unwrap(); // wrong class AND wrong arity
        let c = b.seal().unwrap();
        let vs = check_legality(&c);
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn violation_display() {
        let v = Violation::AccessViolation {
            from: EventId::from_raw(0),
            to: EventId::from_raw(1),
        };
        assert!(v.to_string().contains("access"));
    }
}
